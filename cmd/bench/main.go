// Command bench runs the tier-1 benchmark set end to end and writes a
// machine-readable performance trajectory file (BENCH_minnow.json): per
// configuration, the host wall time, simulated cycles, event-loop steps,
// simulation throughput (steps per host second), and the run's canonical
// summary hash. CI uploads the file as an artifact so simulator
// performance can be tracked commit to commit, and the embedded hashes
// double as a cross-commit determinism check: a hash change without an
// intentional timing-model change is a regression.
//
// The report also carries a serial-vs-parallel section: a SPECrate-style
// configuration of isolated benchmark copies is timed once on the serial
// engine and once per bound/weave worker count, recording wall time,
// steps per second, bound-phase coverage, and the wall-time speedup over
// serial. The summary hashes of the paired runs must agree — the
// parallel engine is byte-identical by contract — so the speedup is a
// pure host-scheduling win, visible on multi-core machines.
//
// A third section measures the single shared-machine run that
// conservative-lookahead horizons (Options.SharedHorizons) exist for: a
// 64-core SSSP instance on the Minnow hardware worklist, serial vs
// bound/weave workers, reporting bound-phase coverage alongside the
// speedup. The section doubles as a regression gate: bench exits
// non-zero if the parallel run's coverage is 0% — the horizons stopped
// exposing idle backoffs — or if the paired hashes diverge.
//
// Usage:
//
//	bench                      # SSSP/CC/TC × {obim, minnow+prefetch}
//	bench -out bench.json -threads 4 -scale 1
//	bench -rate-copies 16 -rate-workers 8
//	bench -single-workers -1   # skip the shared-horizon single-run section
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"minnow/internal/harness"
	"minnow/internal/kernels"
	"minnow/internal/stats"
)

// entry is one benchmark configuration's measurement.
type entry struct {
	Bench        string  `json:"bench"`
	Scheduler    string  `json:"scheduler"`
	Prefetch     bool    `json:"prefetch"`
	Threads      int     `json:"threads"`
	WallSeconds  float64 `json:"wall_seconds"`  // host time for the run
	SimCycles    int64   `json:"sim_cycles"`    // simulated wall cycles
	SimSteps     int64   `json:"sim_steps"`     // event-loop actor steps
	StepsPerSec  float64 `json:"steps_per_sec"` // simulation throughput
	SummaryHash  string  `json:"summary_hash"`  // canonical RunSummary digest
	WorkItems    int64   `json:"work_items"`    // operator applications
	Instructions int64   `json:"instructions"`  // retired micro-ops
}

// rateEntry is one serial-vs-parallel rate measurement. The serial
// engine row has IntraJobs 0 and Speedup 1; parallel rows report their
// wall-time speedup relative to that serial row.
type rateEntry struct {
	Bench       string  `json:"bench"`
	Scheduler   string  `json:"scheduler"`
	Copies      int     `json:"copies"`
	IntraJobs   int     `json:"intra_jobs"`
	WallSeconds float64 `json:"wall_seconds"`
	SimCycles   int64   `json:"sim_cycles"`
	SimSteps    int64   `json:"sim_steps"`
	BoundSteps  int64   `json:"bound_steps"` // steps run inside bound phases
	StepsPerSec float64 `json:"steps_per_sec"`
	Speedup     float64 `json:"speedup"`      // serial wall / this wall
	SummaryHash string  `json:"summary_hash"` // per-copy digest (copies agree)
}

// singleEntry is one serial-vs-parallel measurement of a single
// shared-machine run (no isolated copies) under conservative-lookahead
// horizons. Unlike the rate section, the workers of this run contend on
// one worklist fabric; the bound phase consists of the idle backoffs the
// horizons expose, so BoundCoverage reports how much of the schedule
// parallelized. The serial row has IntraJobs 0 and Speedup 1.
type singleEntry struct {
	Bench         string  `json:"bench"`
	Scheduler     string  `json:"scheduler"`
	Threads       int     `json:"threads"`
	IntraJobs     int     `json:"intra_jobs"`
	WallSeconds   float64 `json:"wall_seconds"`
	SimCycles     int64   `json:"sim_cycles"`
	SimSteps      int64   `json:"sim_steps"`
	BoundSteps    int64   `json:"bound_steps"`
	BoundCoverage float64 `json:"bound_coverage"` // bound_steps / sim_steps
	StepsPerSec   float64 `json:"steps_per_sec"`
	Speedup       float64 `json:"speedup"`      // serial wall / this wall
	SummaryHash   string  `json:"summary_hash"` // must equal the serial row's
}

// report is the BENCH_minnow.json schema.
type report struct {
	Schema       string        `json:"schema"`
	GoVersion    string        `json:"go_version"`
	NumCPU       int           `json:"num_cpu"`
	Threads      int           `json:"threads"`
	Scale        int           `json:"scale"`
	Entries      []entry       `json:"entries"`
	Rate         []rateEntry   `json:"rate,omitempty"`
	Single       []singleEntry `json:"single,omitempty"`
	TotalSeconds float64       `json:"total_seconds"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_minnow.json", "output JSON path")
		threads = flag.Int("threads", 8, "simulated core count")
		scale   = flag.Int("scale", 1, "input scale multiplier")
		seed    = flag.Uint64("seed", 42, "graph generator seed")
		copies  = flag.Int("rate-copies", 8, "isolated copies in the serial-vs-parallel rate section (0 = skip)")
		workers = flag.Int("rate-workers", 0, "bound/weave workers for the parallel rate run (0 = all CPUs, capped at copies)")
		single  = flag.Int("single-workers", 0, "bound/weave workers for the shared-horizon single-run section (0 = all CPUs, -1 = skip)")
	)
	flag.Parse()

	benches := []string{"SSSP", "CC", "TC"}
	configs := []struct {
		sched    string
		prefetch bool
	}{
		{"obim", false},
		{"minnow", true},
	}

	rep := report{
		Schema:    "minnow-bench-v3",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Threads:   *threads,
		Scale:     *scale,
	}
	start := time.Now()
	for _, bench := range benches {
		spec, err := kernels.SpecByName(bench)
		if err != nil {
			fail(err)
		}
		for _, c := range configs {
			o := harness.Options{
				Threads:        *threads,
				Scale:          *scale,
				Seed:           *seed,
				Scheduler:      c.sched,
				Prefetch:       c.prefetch,
				SplitThreshold: 512,
			}
			t0 := time.Now()
			run, err := harness.Run(spec, o)
			if err != nil {
				fail(err)
			}
			dt := time.Since(t0).Seconds()
			sum := run.SumCores()
			e := entry{
				Bench:        bench,
				Scheduler:    c.sched,
				Prefetch:     c.prefetch,
				Threads:      *threads,
				WallSeconds:  dt,
				SimCycles:    run.WallCycles,
				SimSteps:     run.SimSteps,
				SummaryHash:  run.Summary().Hash(),
				WorkItems:    run.WorkItems,
				Instructions: sum.Instrs,
			}
			if dt > 0 {
				e.StepsPerSec = float64(run.SimSteps) / dt
			}
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("%-5s %-6s pf=%-5v  %8.2fs  %12d cycles  %10.0f steps/s  %s\n",
				bench, c.sched, c.prefetch, dt, run.WallCycles, e.StepsPerSec, e.SummaryHash[:16])
		}
	}
	if *copies > 0 {
		if err := benchRate(&rep, *copies, *workers, *scale, *seed); err != nil {
			fail(err)
		}
	}
	if *single >= 0 {
		if err := benchSingle(&rep, *single, *scale, *seed); err != nil {
			fail(err)
		}
	}
	rep.TotalSeconds = time.Since(start).Seconds()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d entries, %.1fs total)\n", *out, len(rep.Entries), rep.TotalSeconds)
}

// benchRate times the SPECrate-style configuration — `copies` isolated
// single-thread SSSP instances in one simulation — on the serial engine
// and again with bound/weave workers, and appends both rows. The paired
// runs must produce the same per-copy summary hash (the parallel engine
// is byte-identical by contract), so any wall-time gap is host
// parallelism, not schedule drift.
func benchRate(rep *report, copies, workers, scale int, seed uint64) error {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > copies {
		workers = copies
	}
	o := harness.Options{
		Scale:          scale,
		Seed:           seed,
		Scheduler:      "obim",
		SplitThreshold: 512,
	}
	measure := func(intra int) (*harness.RateResult, float64, error) {
		ro := o
		ro.IntraJobs = intra
		t0 := time.Now()
		res, err := harness.RunRate(spec, ro, copies)
		return res, time.Since(t0).Seconds(), err
	}
	serial, serialWall, err := measure(0)
	if err != nil {
		return err
	}
	row := func(res *harness.RateResult, intra int, wall float64) rateEntry {
		e := rateEntry{
			Bench:       "SSSP-rate",
			Scheduler:   o.Scheduler,
			Copies:      copies,
			IntraJobs:   intra,
			WallSeconds: wall,
			SimCycles:   res.WallCycles,
			SimSteps:    res.SimSteps,
			BoundSteps:  res.BoundSteps,
			SummaryHash: res.Runs[0].Summary().Hash(),
		}
		if wall > 0 {
			e.StepsPerSec = float64(res.SimSteps) / wall
			e.Speedup = serialWall / wall
		}
		return e
	}
	sRow := row(serial, 0, serialWall)
	rep.Rate = append(rep.Rate, sRow)
	fmt.Printf("rate  %-6s copies=%-3d serial      %8.2fs  %10.0f steps/s  %s\n",
		o.Scheduler, copies, serialWall, sRow.StepsPerSec, sRow.SummaryHash[:16])

	par, parWall, err := measure(workers)
	if err != nil {
		return err
	}
	pRow := row(par, workers, parWall)
	if pRow.SummaryHash != sRow.SummaryHash {
		return fmt.Errorf("bench: rate hash diverged serial=%s parallel=%s", sRow.SummaryHash, pRow.SummaryHash)
	}
	rep.Rate = append(rep.Rate, pRow)
	fmt.Printf("rate  %-6s copies=%-3d workers=%-3d %8.2fs  %10.0f steps/s  %s  speedup %.2fx (bound %d/%d steps)\n",
		o.Scheduler, copies, workers, parWall, pRow.StepsPerSec, pRow.SummaryHash[:16],
		pRow.Speedup, par.BoundSteps, par.SimSteps)
	if runtime.NumCPU() == 1 {
		fmt.Println("rate  NOTE: single-CPU host; the parallel engine cannot beat serial wall time here")
	}
	return nil
}

// benchSingle times the shared-horizon configuration the lookahead
// horizons exist for: one shared-machine 64-core SSSP run on the Minnow
// hardware worklist — the scheduler whose pops can fail while tasks are
// in flight between engines, so workers actually idle — serial and with
// bound/weave workers, SharedHorizons on for both. It appends one row
// per engine mode and enforces two gates: the paired summary hashes must
// agree (byte-identity), and the parallel run's bound-phase coverage
// must be above zero — a 0% cell means the horizons stopped exposing
// idle backoffs and the single-run parallelization silently regressed
// to fully serial.
func benchSingle(rep *report, workers, scale int, seed uint64) error {
	spec, err := kernels.SpecByName("SSSP")
	if err != nil {
		return err
	}
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	const threads = 64
	o := harness.Options{
		Threads:        threads,
		Scale:          scale,
		Seed:           seed,
		Scheduler:      "minnow",
		Prefetch:       true,
		SplitThreshold: 512,
		SharedHorizons: true,
	}
	measure := func(intra int) (*stats.Run, float64, error) {
		so := o
		so.IntraJobs = intra
		t0 := time.Now()
		run, err := harness.Run(spec, so)
		return run, time.Since(t0).Seconds(), err
	}
	serial, serialWall, err := measure(0)
	if err != nil {
		return err
	}
	row := func(run *stats.Run, intra int, wall float64) singleEntry {
		e := singleEntry{
			Bench:       "SSSP-single",
			Scheduler:   o.Scheduler,
			Threads:     threads,
			IntraJobs:   intra,
			WallSeconds: wall,
			SimCycles:   run.WallCycles,
			SimSteps:    run.SimSteps,
			BoundSteps:  run.BoundSteps,
			SummaryHash: run.Summary().Hash(),
		}
		if run.SimSteps > 0 {
			e.BoundCoverage = float64(run.BoundSteps) / float64(run.SimSteps)
		}
		if wall > 0 {
			e.StepsPerSec = float64(run.SimSteps) / wall
			e.Speedup = serialWall / wall
		}
		return e
	}
	sRow := row(serial, 0, serialWall)
	rep.Single = append(rep.Single, sRow)
	fmt.Printf("single %-6s threads=%-3d serial      %8.2fs  %10.0f steps/s  %s\n",
		o.Scheduler, threads, serialWall, sRow.StepsPerSec, sRow.SummaryHash[:16])

	par, parWall, err := measure(workers)
	if err != nil {
		return err
	}
	pRow := row(par, workers, parWall)
	if pRow.SummaryHash != sRow.SummaryHash {
		return fmt.Errorf("bench: single-run hash diverged serial=%s parallel=%s", sRow.SummaryHash, pRow.SummaryHash)
	}
	if pRow.BoundSteps == 0 {
		return fmt.Errorf("bench: single-run bound-phase coverage is 0%% on the %d-core SSSP cell — shared horizons exposed no private steps", threads)
	}
	rep.Single = append(rep.Single, pRow)
	fmt.Printf("single %-6s threads=%-3d workers=%-3d %8.2fs  %10.0f steps/s  %s  speedup %.2fx (coverage %.2f%%)\n",
		o.Scheduler, threads, workers, parWall, pRow.StepsPerSec, pRow.SummaryHash[:16],
		pRow.Speedup, 100*pRow.BoundCoverage)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
