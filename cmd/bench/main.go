// Command bench runs the tier-1 benchmark set end to end and writes a
// machine-readable performance trajectory file (BENCH_minnow.json): per
// configuration, the host wall time, simulated cycles, event-loop steps,
// simulation throughput (steps per host second), and the run's canonical
// summary hash. CI uploads the file as an artifact so simulator
// performance can be tracked commit to commit, and the embedded hashes
// double as a cross-commit determinism check: a hash change without an
// intentional timing-model change is a regression.
//
// Usage:
//
//	bench                      # SSSP/CC/TC × {obim, minnow+prefetch}
//	bench -out bench.json -threads 4 -scale 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"minnow/internal/harness"
	"minnow/internal/kernels"
)

// entry is one benchmark configuration's measurement.
type entry struct {
	Bench        string  `json:"bench"`
	Scheduler    string  `json:"scheduler"`
	Prefetch     bool    `json:"prefetch"`
	Threads      int     `json:"threads"`
	WallSeconds  float64 `json:"wall_seconds"`  // host time for the run
	SimCycles    int64   `json:"sim_cycles"`    // simulated wall cycles
	SimSteps     int64   `json:"sim_steps"`     // event-loop actor steps
	StepsPerSec  float64 `json:"steps_per_sec"` // simulation throughput
	SummaryHash  string  `json:"summary_hash"`  // canonical RunSummary digest
	WorkItems    int64   `json:"work_items"`    // operator applications
	Instructions int64   `json:"instructions"`  // retired micro-ops
}

// report is the BENCH_minnow.json schema.
type report struct {
	Schema       string  `json:"schema"`
	GoVersion    string  `json:"go_version"`
	NumCPU       int     `json:"num_cpu"`
	Threads      int     `json:"threads"`
	Scale        int     `json:"scale"`
	Entries      []entry `json:"entries"`
	TotalSeconds float64 `json:"total_seconds"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_minnow.json", "output JSON path")
		threads = flag.Int("threads", 8, "simulated core count")
		scale   = flag.Int("scale", 1, "input scale multiplier")
		seed    = flag.Uint64("seed", 42, "graph generator seed")
	)
	flag.Parse()

	benches := []string{"SSSP", "CC", "TC"}
	configs := []struct {
		sched    string
		prefetch bool
	}{
		{"obim", false},
		{"minnow", true},
	}

	rep := report{
		Schema:    "minnow-bench-v1",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Threads:   *threads,
		Scale:     *scale,
	}
	start := time.Now()
	for _, bench := range benches {
		spec, err := kernels.SpecByName(bench)
		if err != nil {
			fail(err)
		}
		for _, c := range configs {
			o := harness.Options{
				Threads:        *threads,
				Scale:          *scale,
				Seed:           *seed,
				Scheduler:      c.sched,
				Prefetch:       c.prefetch,
				SplitThreshold: 512,
			}
			t0 := time.Now()
			run, err := harness.Run(spec, o)
			if err != nil {
				fail(err)
			}
			dt := time.Since(t0).Seconds()
			sum := run.SumCores()
			e := entry{
				Bench:        bench,
				Scheduler:    c.sched,
				Prefetch:     c.prefetch,
				Threads:      *threads,
				WallSeconds:  dt,
				SimCycles:    run.WallCycles,
				SimSteps:     run.SimSteps,
				SummaryHash:  run.Summary().Hash(),
				WorkItems:    run.WorkItems,
				Instructions: sum.Instrs,
			}
			if dt > 0 {
				e.StepsPerSec = float64(run.SimSteps) / dt
			}
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("%-5s %-6s pf=%-5v  %8.2fs  %12d cycles  %10.0f steps/s  %s\n",
				bench, c.sched, c.prefetch, dt, run.WallCycles, e.StepsPerSec, e.SummaryHash[:16])
		}
	}
	rep.TotalSeconds = time.Since(start).Seconds()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d entries, %.1fs total)\n", *out, len(rep.Entries), rep.TotalSeconds)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
