// Command minnowd serves Minnow simulations over HTTP: jobs are
// submitted as JSON configs, queued by priority, executed on a sharded
// worker pool, and deduplicated through a content-addressed result
// cache keyed by the canonical form of the validated config. Because
// every simulation is bit-reproducible, a cache hit returns the exact
// bytes a fresh run would produce — see docs/SERVICE.md for the API
// reference and cache-key canonicalization rules.
//
// Usage:
//
//	minnowd -addr :8080
//	minnowd -addr :8080 -shards 4 -cache-dir /var/lib/minnowd
//	minnowd -addr :8080 -job-max-cycles 500000000 -progress-every 1000000
//	minnowd -cache-dir /var/lib/minnowd -journal /var/lib/minnowd/journal.jsonl
//
// SIGINT/SIGTERM drains: submissions are refused with 503, accepted
// jobs finish, then the process exits. With -journal, accepted jobs
// additionally survive a crash (kill -9): the next start replays the
// journal, serves since-completed jobs from the cache, and re-enqueues
// the rest — determinism guarantees the re-runs reproduce the exact
// results the lost runs would have produced.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"minnow/internal/inspect"
	"minnow/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address (host:port)")
		shards   = flag.Int("shards", 0, "concurrent simulations (0 = size against -intra-jobs via the shared budget)")
		intra    = flag.Int("intra-jobs", 0, "bound/weave workers inside each simulation for jobs that leave IntraJobs 0 (host-only; never changes results)")
		cacheDir = flag.String("cache-dir", "", "persist the result cache under this directory (empty = memory only)")
		cacheMax = flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries past this many bytes (0 = unbounded)")
		jpath    = flag.String("journal", "", "append-only job journal for crash recovery; replayed on startup (empty = no journal)")
		queueCap = flag.Int("queue-limit", 0, "refuse submissions beyond this many queued jobs with 429 (0 = 65536)")
		maxCyc   = flag.Int64("job-max-cycles", 0, "watchdog bound applied to jobs that leave MaxCycles 0: halt past this many simulated cycles (0 = simulator default)")
		progress = flag.Int64("progress-every", 0, "metrics-sampling cadence in simulated cycles for jobs that leave MetricsEvery 0; feeds /jobs/{id}/stream (0 = off)")
		inspAddr = flag.String("inspect", "", "also serve the live inspector (host pprof + metrics) on this address; minnowd's counters are registered onto its /metrics")
		traceDir = flag.String("trace-dir", "", "persist each job's merged lifecycle+simulation trace (Chrome-trace JSON) under this directory; also where flight-recorder dumps land on panic, watchdog halt, or SIGTERM (empty = in-memory only)")
		flightN  = flag.Int("flightrec-events", 0, "flight-recorder ring capacity: recent structured service events retained for /debug/flightrec and crash dumps (0 = 4096)")
		drainFor = flag.Duration("drain-timeout", 10*time.Minute, "on SIGINT/SIGTERM, cancel still-queued jobs after this long (running jobs ride their watchdog)")
	)
	flag.Parse()

	s, err := service.New(service.Config{
		Shards:          *shards,
		IntraJobs:       *intra,
		CacheDir:        *cacheDir,
		CacheMaxBytes:   *cacheMax,
		JournalPath:     *jpath,
		QueueLimit:      *queueCap,
		MaxCycles:       *maxCyc,
		ProgressEvery:   *progress,
		TraceDir:        *traceDir,
		FlightRecEvents: *flightN,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "minnowd:", err)
		os.Exit(1)
	}

	bound, stop, err := s.Serve(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "minnowd:", err)
		os.Exit(1)
	}
	fmt.Printf("minnowd: serving on %s (%d shards, cache %s)\n", bound, s.Shards(), cacheDesc(*cacheDir, s.Cache().Len()))
	if s.Cache().Degraded() {
		fmt.Fprintf(os.Stderr, "minnowd: WARNING: cache degraded to memory-only: %s\n", s.Cache().DegradedReason())
	}
	if rec := s.Recovery(); *jpath != "" && (rec.Requeued > 0 || rec.Completed > 0) {
		fmt.Printf("minnowd: journal replay: %d jobs re-enqueued, %d served from cache\n", rec.Requeued, rec.Completed)
	}
	if *traceDir != "" {
		fmt.Printf("minnowd: tracing to %s (GET /jobs/{id}/trace; flight-recorder dumps on crash)\n", *traceDir)
	}

	if *inspAddr != "" {
		insp, err := inspect.Start(*inspAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "minnowd:", err)
			os.Exit(1)
		}
		insp.Register(s.MetricsText)
		defer insp.Close()
		fmt.Printf("minnowd: inspector on %s (host pprof + service metrics)\n", insp.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("minnowd: draining (accepted jobs finish; submissions now refused)")
	if path, err := s.DumpFlight("sigterm"); err != nil {
		fmt.Fprintln(os.Stderr, "minnowd: flight-recorder dump failed:", err)
	} else if path != "" {
		fmt.Println("minnowd: flight recorder dumped to", path)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "minnowd: drain timeout, queued jobs canceled:", err)
	}
	stop() //nolint:errcheck // listener teardown on exit
	fmt.Println("minnowd: drained, bye")
}

// cacheDesc renders the startup cache summary line.
func cacheDesc(dir string, entries int) string {
	if dir == "" {
		return "in-memory"
	}
	return fmt.Sprintf("%s with %d entries", dir, entries)
}
