// Command graphgen generates and inspects the synthetic graph inputs,
// including the Table-1 inventory.
//
// Usage:
//
//	graphgen table1
//	graphgen -kind road -n 22500 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"

	"minnow"
	"minnow/internal/graph"
	"minnow/internal/stats"
)

func main() {
	var (
		kind = flag.String("kind", "road", "generator: road, random, kron, smallworld, talk, dblp, bipartite")
		n    = flag.Int("n", 10000, "node count (kron: rounded up to a power of two)")
		seed = flag.Uint64("seed", 42, "generator seed")
		save = flag.String("save", "", "write the generated graph in binary CSR form")
	)
	flag.Parse()

	if flag.Arg(0) == "table1" {
		text, err := minnow.RenderFigure("table1", minnow.FigureOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		fmt.Print(text)
		return
	}

	var g *graph.Graph
	switch *kind {
	case "road":
		g = graph.RoadMesh(*n, *seed)
	case "random":
		g = graph.UniformRandom(*n, 4, *seed)
	case "kron":
		scale := 1
		for 1<<scale < *n {
			scale++
		}
		g = graph.Kronecker(scale, 16, *seed)
	case "smallworld":
		g = graph.SmallWorld(*n, 6, *seed)
	case "talk":
		g = graph.PowerLawTalk(*n, *seed)
	case "dblp":
		g = graph.CommunityDBLP(*n, *seed)
	case "bipartite":
		g = graph.Bipartite(*n, *n/2, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	node, deg := g.MaxDegreeNode()
	var degSum int64
	hist := stats.NewHistogram(1, 2, 4, 8, 16, 64, 256, 4096)
	for v := int32(0); v < int32(g.N); v++ {
		d := g.Degree(v)
		degSum += int64(d)
		hist.Add(int64(d))
	}
	fmt.Printf("graph       %s\n", g.Name)
	fmt.Printf("nodes       %d\n", g.N)
	fmt.Printf("edges       %d (directed)\n", g.NumEdges())
	fmt.Printf("avg degree  %.2f\n", float64(degSum)/float64(g.N))
	fmt.Printf("max degree  %d (node %d)\n", deg, node)
	fmt.Printf("est. diam   %d\n", g.EstimateDiameter(0))
	fmt.Printf("size        %.1f MB (32B nodes, 16B edges)\n", float64(g.SizeBytes())/1e6)
	fmt.Printf("degree histogram (upper bounds %v): %v\n", hist.Bounds, hist.Counts)
	ds := g.Degrees()
	fmt.Printf("degree p50/p90/p99  %d / %d / %d (isolated %d)\n", ds.P50, ds.P90, ds.P99, ds.Isolated)
	_, comps := g.Components()
	fmt.Printf("components  %d\n", comps)
	fmt.Printf("clustering  %.4f\n", g.ClusteringCoefficient())
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := g.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		fmt.Printf("saved       %s\n", *save)
	}
}
