// Command minnowload drives a running minnowd with a synthetic job
// stream and reports throughput, latency, and cache effectiveness. It
// replays a small sweep grid (benchmarks × seeds) with cycling
// duplicates, so a correctly deduplicating server converges to serving
// most submissions from the content-addressed cache.
//
// Two load shapes:
//
//   - closed loop (default): -clients workers each submit, wait for the
//     terminal status, then submit again — back-pressure bounded.
//   - open loop: -rate R submits R jobs/second regardless of completion,
//     the shape that exposes queueing collapse.
//
// Every completed job is checked client-side: the summary hash reported
// for a cache key must match every other completion of that key. A
// mismatch is a determinism violation in the server's cache and makes
// the run exit nonzero, as does -require-hits when the run finishes
// without a single deduplicated submission. CI runs a short smoke with
// -require-hits as the dedup-correctness gate (see docs/SERVICE.md).
//
// Backpressure responses (429 queue-full, 503 draining) are retried
// with exponential backoff and full jitter, honoring the server's
// Retry-After hint. -cancel-frac DELETEs a fraction of accepted jobs
// after a short random delay to exercise the cancellation path under
// load; those submissions are expected to end canceled.
//
// Usage:
//
//	minnowload -addr http://127.0.0.1:8080 -duration 30s
//	minnowload -addr http://127.0.0.1:8080 -rate 20 -duration 1m -seeds 4
//	minnowload -addr http://127.0.0.1:8080 -duration 30s -cancel-frac 0.2
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minnow/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "minnowd base URL")
		dur     = flag.Duration("duration", 30*time.Second, "how long to keep submitting")
		clients = flag.Int("clients", 4, "closed-loop worker count (ignored with -rate)")
		rate    = flag.Float64("rate", 0, "open-loop submissions per second (0 = closed loop)")
		benches = flag.String("benches", "SSSP,BFS", "comma-separated benchmark grid")
		seeds   = flag.Int("seeds", 2, "distinct seeds per benchmark (grid size = benches × seeds; smaller grids repeat sooner and hit the cache harder)")
		threads = flag.Int("threads", 1, "simulated core count per job (keep small; every miss is a full simulation)")
		wait    = flag.Duration("wait", 5*time.Minute, "per-job completion wait before counting it lost")
		require = flag.Bool("require-hits", false, "exit nonzero unless at least one submission was served by cache hit or coalescing")
		cancelF = flag.Float64("cancel-frac", 0, "DELETE this fraction of accepted jobs after a short random delay (exercises the cancellation path; canceled terminals count as expected, not failures)")
		arrival = flag.String("arrivals", "", "server-side open-loop arrival plan on every job: preset (steady, burst, waves, trickle) or clause expression; completions are checked for sane latency percentiles")
	)
	flag.Parse()
	if *cancelF < 0 || *cancelF > 1 {
		fmt.Fprintln(os.Stderr, "minnowload: -cancel-frac must be in [0, 1]")
		os.Exit(2)
	}

	grid := buildGrid(strings.Split(*benches, ","), *seeds, *threads, *arrival)
	fmt.Printf("minnowload: %d-point grid against %s for %v\n", len(grid), *addr, *dur)

	l := &loader{addr: strings.TrimRight(*addr, "/"), grid: grid, wait: *wait, cancelFrac: *cancelF,
		checkArrivals: *arrival != "",
		hashes:        make(map[string]string), statusSojourns: make(map[string][]time.Duration)}
	deadline := time.Now().Add(*dur)
	if *rate > 0 {
		l.openLoop(*rate, deadline)
	} else {
		l.closedLoop(*clients, deadline)
	}
	ok := l.report(*require)
	if !ok {
		os.Exit(1)
	}
}

// buildGrid expands the benchmark × seed sweep into submission bodies
// with their client-side cache keys. A non-empty arrivals plan is
// threaded onto every spec (and so into every client-side key — the
// server must agree, or the key cross-check below flags it).
func buildGrid(benches []string, seeds, threads int, arrivals string) []point {
	var grid []point
	for _, b := range benches {
		b = strings.TrimSpace(b)
		for s := 0; s < seeds; s++ {
			spec := service.JobSpec{Bench: b, Config: service.ConfigSpec{
				Threads: threads, Seed: 42 + uint64(s), Minnow: true, Prefetch: true,
				Arrivals: arrivals,
			}}
			key, _ := service.CacheKey(b, spec.Config.ToConfig())
			body, _ := json.Marshal(spec)
			grid = append(grid, point{key: key, body: body})
		}
	}
	return grid
}

// point is one grid entry: the request body and the cache key the
// client expects the server to file it under.
type point struct {
	key  string
	body []byte
}

// loader runs the load shape and accumulates results.
type loader struct {
	addr       string
	grid       []point
	wait       time.Duration
	cancelFrac float64
	// checkArrivals validates every completion's summary against the
	// open-loop latency contract (-arrivals was set): latency stats
	// present, injected == retired, and percentiles monotone.
	checkArrivals bool

	// corrSeq numbers the correlation IDs this run threads through its
	// submissions ("load-<n>", sent as X-Correlation-ID and verified
	// echoed on every view).
	corrSeq atomic.Int64

	mu        sync.Mutex
	submitted int
	completed int
	cachedN   int // served with Cached or Coalesced set
	canceledN int // submissions we DELETEd that ended canceled
	retries   int // submissions retried after a 429/503 backpressure response
	failures  []string
	sojourns  []time.Duration
	// statusSojourns buckets client-observed sojourns by terminal status
	// (done and expected-canceled; failures carry no useful latency).
	statusSojourns map[string][]time.Duration
	hashes         map[string]string // key → first summary hash seen
	mismatch       []string
}

// closedLoop runs n workers, each submit-wait-repeat until the deadline.
func (l *loader) closedLoop(n int, deadline time.Time) {
	var wg sync.WaitGroup
	var next int64
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				mu.Lock()
				p := l.grid[int(next)%len(l.grid)]
				next++
				mu.Unlock()
				l.one(p)
			}
		}()
	}
	wg.Wait()
}

// openLoop submits at a fixed rate without waiting for completions,
// then waits for the stragglers.
func (l *loader) openLoop(rate float64, deadline time.Time) {
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	var wg sync.WaitGroup
	for i := 0; time.Now().Before(deadline); i++ {
		<-tick.C
		p := l.grid[i%len(l.grid)]
		wg.Add(1)
		go func() { defer wg.Done(); l.one(p) }()
	}
	wg.Wait()
}

// one submits a single job, waits for its terminal status, and records
// the sojourn and the key→hash observation. Each submission carries an
// X-Correlation-ID ("load-<n>") and verifies the server echoes it, and
// every terminal view's lifecycle stamps are validated (positive,
// ordered) — a zero or backwards stamp is a server tracing bug.
func (l *loader) one(p point) {
	start := time.Now()
	l.mu.Lock()
	l.submitted++
	l.mu.Unlock()

	corr := fmt.Sprintf("load-%d", l.corrSeq.Add(1))
	v, err := l.submit(p.body, corr)
	if err != nil {
		l.fail(err.Error())
		return
	}
	if v.Corr != corr {
		l.fail(fmt.Sprintf("%s: correlation ID %q not echoed (got %q)", v.ID, corr, v.Corr))
		return
	}
	// Optionally exercise the cancellation path: DELETE a fraction of
	// accepted (not born-done) submissions after a short random delay.
	wantCancel := l.cancelFrac > 0 && !terminalStatus(v.Status) && rand.Float64() < l.cancelFrac
	if wantCancel {
		time.Sleep(time.Duration(rand.Int63n(int64(100 * time.Millisecond))))
		if err := l.cancel(v.ID); err != nil {
			l.fail(err.Error())
			return
		}
	}
	for v.Status == service.StatusQueued || v.Status == service.StatusRunning {
		if time.Since(start) > l.wait {
			l.fail(fmt.Sprintf("%s: no terminal status within %v", v.ID, l.wait))
			return
		}
		time.Sleep(50 * time.Millisecond)
		v, err = l.poll(v.ID)
		if err != nil {
			l.fail(err.Error())
			return
		}
	}
	if err := checkStamps(v); err != nil {
		l.fail(err.Error())
		return
	}
	if v.Status == service.StatusCanceled && wantCancel {
		// The expected terminal for a submission we DELETEd; it carries no
		// result, so it contributes nothing to the hash cross-check.
		l.mu.Lock()
		l.canceledN++
		l.statusSojourns[v.Status] = append(l.statusSojourns[v.Status], time.Since(start))
		l.mu.Unlock()
		return
	}
	if v.Status != service.StatusDone {
		l.fail(fmt.Sprintf("%s: terminal status %s: %s", v.ID, v.Status, v.Error))
		return
	}
	if l.checkArrivals {
		if err := checkLatency(v); err != nil {
			l.fail(err.Error())
			return
		}
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.completed++
	l.sojourns = append(l.sojourns, time.Since(start))
	l.statusSojourns[v.Status] = append(l.statusSojourns[v.Status], time.Since(start))
	if v.Cached || v.Coalesced {
		l.cachedN++
	}
	if v.Key != p.key {
		l.mismatch = append(l.mismatch, fmt.Sprintf("%s: server key %s != client key %s", v.ID, v.Key, p.key))
	}
	if prev, seen := l.hashes[p.key]; !seen {
		l.hashes[p.key] = v.SummaryHash
	} else if prev != v.SummaryHash {
		l.mismatch = append(l.mismatch, fmt.Sprintf("%s: key %s returned hash %s, previously %s", v.ID, p.key, v.SummaryHash, prev))
	}
}

// submit POSTs one job (tagged with the given correlation ID) and
// decodes the JobView. Backpressure responses (429 queue-full, 503
// draining) are retried with exponential backoff and jitter, honoring
// the server's Retry-After hint when present; the retry budget is the
// same per-job wait bound used for completion.
func (l *loader) submit(body []byte, corr string) (service.JobView, error) {
	deadline := time.Now().Add(l.wait)
	backoff := 100 * time.Millisecond
	for {
		req, err := http.NewRequest(http.MethodPost, l.addr+"/jobs", bytes.NewReader(body))
		if err != nil {
			return service.JobView{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Correlation-ID", corr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return service.JobView{}, err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			var v service.JobView
			if err := json.Unmarshal(b, &v); err != nil {
				return service.JobView{}, fmt.Errorf("POST /jobs: bad body: %w", err)
			}
			return v, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			sleep := backoff
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				sleep = time.Duration(ra) * time.Second
			}
			// Full jitter: a uniform draw in (0, sleep] decorrelates the
			// retry herd that a fixed Retry-After would synchronize.
			sleep = time.Duration(rand.Int63n(int64(sleep))) + time.Millisecond
			if time.Now().Add(sleep).After(deadline) {
				return service.JobView{}, fmt.Errorf("POST /jobs: %d after %v of backoff: %s", resp.StatusCode, l.wait, strings.TrimSpace(string(b)))
			}
			l.mu.Lock()
			l.retries++
			l.mu.Unlock()
			time.Sleep(sleep)
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
		default:
			return service.JobView{}, fmt.Errorf("POST /jobs: %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
		}
	}
}

// cancel DELETEs one job (idempotent on the server side).
func (l *loader) cancel(id string) error {
	req, err := http.NewRequest(http.MethodDelete, l.addr+"/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("DELETE /jobs/%s: %d", id, resp.StatusCode)
	}
	return nil
}

// checkStamps validates a terminal view's lifecycle timestamps: the
// submission and terminal stamps must be positive and ordered, and the
// dispatch stamp (when the job ran) must sit between them. A zero or
// negative stamp, or a backwards ordering, means the server's lifecycle
// tracing is broken.
func checkStamps(v service.JobView) error {
	if v.QueuedAtNS <= 0 || v.DoneAtNS <= 0 {
		return fmt.Errorf("%s: non-positive lifecycle stamps: queued_at_ns=%d done_at_ns=%d", v.ID, v.QueuedAtNS, v.DoneAtNS)
	}
	if v.DoneAtNS < v.QueuedAtNS {
		return fmt.Errorf("%s: terminal stamp precedes submission: queued_at_ns=%d done_at_ns=%d", v.ID, v.QueuedAtNS, v.DoneAtNS)
	}
	if v.StartedAtNS != 0 && (v.StartedAtNS < v.QueuedAtNS || v.StartedAtNS > v.DoneAtNS) {
		return fmt.Errorf("%s: dispatch stamp outside [submit, terminal]: queued_at_ns=%d started_at_ns=%d done_at_ns=%d",
			v.ID, v.QueuedAtNS, v.StartedAtNS, v.DoneAtNS)
	}
	return nil
}

// checkLatency validates a done view's open-loop latency block: every
// -arrivals completion must carry latency stats in its summary with
// conservation (injected == retired — the server ran the job to drain)
// and monotone percentiles (p50 ≤ p95 ≤ p99 for both queue wait and
// sojourn, per class). An absent block means the server dropped the
// arrivals field; non-monotone percentiles mean the percentile math or
// the recorder is broken.
func checkLatency(v service.JobView) error {
	var sum struct {
		Latency *struct {
			Injected int64 `json:"injected"`
			Retired  int64 `json:"retired"`
			Classes  []struct {
				Class      string `json:"class"`
				WaitP50    int64  `json:"wait_p50"`
				WaitP95    int64  `json:"wait_p95"`
				WaitP99    int64  `json:"wait_p99"`
				SojournP50 int64  `json:"sojourn_p50"`
				SojournP95 int64  `json:"sojourn_p95"`
				SojournP99 int64  `json:"sojourn_p99"`
			} `json:"classes"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(v.Summary, &sum); err != nil {
		return fmt.Errorf("%s: summary JSON: %w", v.ID, err)
	}
	l := sum.Latency
	if l == nil {
		return fmt.Errorf("%s: -arrivals job completed without latency stats in its summary", v.ID)
	}
	if l.Injected != l.Retired {
		return fmt.Errorf("%s: arrival conservation violated: injected %d != retired %d", v.ID, l.Injected, l.Retired)
	}
	for _, c := range l.Classes {
		if c.WaitP50 > c.WaitP95 || c.WaitP95 > c.WaitP99 {
			return fmt.Errorf("%s: class %s wait percentiles not monotone: p50 %d, p95 %d, p99 %d",
				v.ID, c.Class, c.WaitP50, c.WaitP95, c.WaitP99)
		}
		if c.SojournP50 > c.SojournP95 || c.SojournP95 > c.SojournP99 {
			return fmt.Errorf("%s: class %s sojourn percentiles not monotone: p50 %d, p95 %d, p99 %d",
				v.ID, c.Class, c.SojournP50, c.SojournP95, c.SojournP99)
		}
	}
	return nil
}

// terminalStatus mirrors the server's terminal-status set.
func terminalStatus(status string) bool {
	return status == service.StatusDone || status == service.StatusFailed || status == service.StatusCanceled
}

// poll GETs one job's current view.
func (l *loader) poll(id string) (service.JobView, error) {
	resp, err := http.Get(l.addr + "/jobs/" + id)
	if err != nil {
		return service.JobView{}, err
	}
	defer resp.Body.Close()
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return service.JobView{}, fmt.Errorf("GET /jobs/%s: %w", id, err)
	}
	return v, nil
}

// fail records one lost submission.
func (l *loader) fail(msg string) {
	l.mu.Lock()
	l.failures = append(l.failures, msg)
	l.mu.Unlock()
}

// report prints the run summary and returns whether the run passes:
// no hash mismatches, no failures, and (with requireHits) at least one
// deduplicated submission.
func (l *loader) report(requireHits bool) bool {
	l.mu.Lock()
	defer l.mu.Unlock()

	sort.Slice(l.sojourns, func(i, j int) bool { return l.sojourns[i] < l.sojourns[j] })
	pct := func(p float64) time.Duration {
		if len(l.sojourns) == 0 {
			return 0
		}
		i := int(p * float64(len(l.sojourns)-1))
		return l.sojourns[i]
	}
	var total time.Duration
	for _, d := range l.sojourns {
		total += d
	}
	ratio := 0.0
	if l.completed > 0 {
		ratio = float64(l.cachedN) / float64(l.completed)
	}

	fmt.Printf("minnowload: submitted %d, completed %d, canceled %d, failed %d (backpressure retries %d)\n",
		l.submitted, l.completed, l.canceledN, len(l.failures), l.retries)
	if l.completed > 0 {
		fmt.Printf("minnowload: sojourn p50 %v  p99 %v  mean %v\n", pct(0.50).Round(time.Millisecond), pct(0.99).Round(time.Millisecond), (total / time.Duration(l.completed)).Round(time.Millisecond))
	}
	// Per-terminal-status percentiles: canceled submissions resolve much
	// faster than completed simulations, so one merged distribution hides
	// both shapes.
	statuses := make([]string, 0, len(l.statusSojourns))
	for st := range l.statusSojourns {
		statuses = append(statuses, st)
	}
	sort.Strings(statuses)
	for _, st := range statuses {
		ds := l.statusSojourns[st]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		q := func(p float64) time.Duration { return ds[int(p*float64(len(ds)-1))] }
		fmt.Printf("minnowload: sojourn[%s] n=%d  p50 %v  p95 %v  p99 %v\n",
			st, len(ds), q(0.50).Round(time.Millisecond), q(0.95).Round(time.Millisecond), q(0.99).Round(time.Millisecond))
	}
	fmt.Printf("minnowload: client-observed cache hit ratio %.3f (%d of %d served without a fresh simulation)\n", ratio, l.cachedN, l.completed)
	fmt.Printf("minnowload: %d distinct cache keys, %d hash mismatches\n", len(l.hashes), len(l.mismatch))

	ok := true
	for _, m := range l.mismatch {
		fmt.Fprintln(os.Stderr, "minnowload: MISMATCH:", m)
		ok = false
	}
	for i, f := range l.failures {
		if i == 8 {
			fmt.Fprintf(os.Stderr, "minnowload: ... and %d more failures\n", len(l.failures)-i)
			break
		}
		fmt.Fprintln(os.Stderr, "minnowload: FAILED:", f)
	}
	if len(l.failures) > 0 {
		ok = false
	}
	if requireHits && l.cachedN == 0 {
		fmt.Fprintln(os.Stderr, "minnowload: -require-hits: no submission was deduplicated")
		ok = false
	}
	return ok
}
