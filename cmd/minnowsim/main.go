// Command minnowsim runs a single benchmark on the simulated CMP and
// prints its metrics. With -verify-determinism the configuration is
// instead run twice and the runs compared field by field (wall cycles,
// step counts, per-core statistics hash).
//
// Usage:
//
//	minnowsim -bench SSSP -threads 16 -minnow -prefetch
//	minnowsim -bench CC -minnow -prefetch -verify-determinism
//	minnowsim -bench SSSP -minnow -prefetch -faults transient -invariants
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"minnow"
	"minnow/internal/inspect"
)

func main() {
	var (
		bench    = flag.String("bench", "SSSP", "benchmark: "+strings.Join(minnow.Benchmarks(), ", "))
		threads  = flag.Int("threads", 8, "simulated core count")
		scale    = flag.Int("scale", 1, "input scale multiplier")
		seed     = flag.Uint64("seed", 42, "graph generator seed")
		useMin   = flag.Bool("minnow", false, "offload the worklist to Minnow engines")
		prefetch = flag.Bool("prefetch", false, "worklist-directed prefetching (needs -minnow)")
		credits  = flag.Int("credits", 32, "prefetch credits")
		sched    = flag.String("sched", "obim", "software scheduler: obim, fifo, lifo, strictpq")
		hwpf     = flag.String("hwpf", "", "hardware prefetcher baseline: stride, imp")
		split    = flag.Int("split", 0, "task-splitting threshold (0 = off)")
		channels = flag.Int("channels", 12, "DRAM channels")
		serial   = flag.Bool("serial", false, "serial baseline (atomics elided; forces 1 thread)")
		budget   = flag.Int64("budget", 0, "work budget (0 = unlimited)")
		traceN   = flag.Int("trace", 0, "print the last N Minnow engine events (needs -minnow)")
		graphIn  = flag.String("graph", "", "run on a saved binary CSR graph (see graphgen -save)")
		source   = flag.Int("source", 0, "source node for SSSP/BFS/G500 with -graph")
		verify   = flag.Bool("verify-determinism", false, "run the configuration twice and compare results")
		timeline = flag.String("timeline", "", "write a Chrome-trace/Perfetto timeline JSON to this file")
		every    = flag.Int64("metrics-every", 0, "sample time-series metrics every N simulated cycles")
		metrics  = flag.String("metrics", "metrics.csv", "interval-metrics CSV path (with -metrics-every)")
		faults   = flag.String("faults", "", "fault-injection plan: a preset (transient, offline, chaos) or clause expression (see docs/ROBUSTNESS.md)")
		arrivals = flag.String("arrivals", "", "open-loop arrival plan: a preset (steady, burst, waves, trickle) or clause expression (see EXPERIMENTS.md)")
		invar    = flag.Bool("invariants", false, "enable runtime invariant checking and the no-progress watchdog")
		maxCyc   = flag.Int64("max-cycles", 0, "halt with a diagnostic snapshot past this many simulated cycles (0 = large default)")
		profile  = flag.String("profile", "", "write a pprof profile of simulated cycles to this file (inspect with `go tool pprof`)")
		folded   = flag.String("folded", "", "write the profiler's folded stacks to this file (feed to flamegraph tooling)")
		httpAddr = flag.String("http", "", "serve the live run inspector on this address (host:port; needs -metrics-every)")
		intra    = flag.Int("intra-jobs", 0, "bound/weave engine workers inside the simulation (0 = serial engine; output is byte-identical either way)")
		window   = flag.Int64("epoch-window", 0, "bound/weave epoch length in cycles (0 = default; needs -intra-jobs)")
		shareHz  = flag.Bool("shared-horizons", false, "conservative-lookahead horizons: idle backoffs become private steps the bound/weave engine can run concurrently (changes the step schedule; byte-identical across -intra-jobs values for a fixed setting)")
	)
	flag.Parse()

	// -sched defaults to obim for software runs; with -minnow the engine
	// owns the worklist, so only an explicit -sched should conflict.
	schedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sched" {
			schedSet = true
		}
	})

	cfg := minnow.Config{
		Threads:        *threads,
		Scale:          *scale,
		Seed:           *seed,
		Minnow:         *useMin,
		Prefetch:       *prefetch,
		Credits:        *credits,
		Scheduler:      *sched,
		HWPrefetcher:   *hwpf,
		SplitThreshold: int32(*split),
		MemChannels:    *channels,
		Serial:         *serial,
		WorkBudget:     *budget,
		TraceEvents:    *traceN,
		MetricsEvery:   *every,
		Timeline:       *timeline != "",
		Profile:        *profile != "" || *folded != "",
		Faults:         *faults,
		Arrivals:       *arrivals,
		Invariants:     *invar,
		MaxCycles:      *maxCyc,
		IntraJobs:      *intra,
		EpochWindow:    *window,
		SharedHorizons: *shareHz,
	}
	if *serial {
		cfg.Threads = 1
	}
	if *useMin && !schedSet {
		cfg.Scheduler = ""
	}
	if *httpAddr != "" {
		// The inspector is observe-only: it republishes each crossed
		// metrics-sample boundary over HTTP and serves host-process pprof.
		if *every <= 0 {
			fmt.Fprintln(os.Stderr, "minnowsim: -http needs -metrics-every to have samples to publish")
			os.Exit(1)
		}
		srv, ierr := inspect.Start(*httpAddr)
		if ierr != nil {
			fmt.Fprintln(os.Stderr, "minnowsim:", ierr)
			os.Exit(1)
		}
		defer srv.Close()
		cfg.OnSample = srv.OnSample
		fmt.Printf("live inspector   http://%s/ (metrics + host pprof)\n", srv.Addr())
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "minnowsim:", err)
		os.Exit(1)
	}
	if *verify {
		if *graphIn != "" {
			fmt.Fprintln(os.Stderr, "minnowsim: -verify-determinism does not support -graph")
			os.Exit(1)
		}
		reports, err := minnow.VerifyDeterminism(
			[]minnow.RunRequest{{Benchmark: *bench, Config: cfg}}, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "minnowsim:", err)
			os.Exit(1)
		}
		rep := reports[0]
		if !rep.OK() {
			fmt.Printf("FAIL %s sched=%s: runs diverged\n", rep.Benchmark, rep.Scheduler)
			for _, m := range rep.Mismatches {
				fmt.Printf("     %s\n", m)
			}
			os.Exit(1)
		}
		fmt.Printf("PASS %s sched=%s: 2 runs identical (stats hash %s)\n",
			rep.Benchmark, rep.Scheduler, rep.Hash[:16])
		return
	}
	var res *minnow.Result
	var err error
	if *graphIn != "" {
		f, ferr := os.Open(*graphIn)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "minnowsim:", ferr)
			os.Exit(1)
		}
		g, gerr := minnow.LoadGraph(f)
		f.Close()
		if gerr != nil {
			fmt.Fprintln(os.Stderr, "minnowsim:", gerr)
			os.Exit(1)
		}
		fmt.Printf("input graph      %s (%d nodes, %d edges)\n", g.Name(), g.NumNodes(), g.NumEdges())
		res, err = minnow.RunGraph(*bench, g, int32(*source), cfg)
	} else {
		res, err = minnow.Run(*bench, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "minnowsim:", err)
		os.Exit(1)
	}
	fmt.Printf("benchmark        %s (verified against reference)\n", res.Benchmark)
	fmt.Printf("threads          %d\n", res.Threads)
	fmt.Printf("wall cycles      %d\n", res.WallCycles)
	fmt.Printf("tasks executed   %d\n", res.Tasks)
	fmt.Printf("instructions     %d\n", res.Instructions)
	fmt.Printf("L2 demand MPKI   %.2f\n", res.L2MPKI)
	fmt.Printf("delinquent dens. %.3f\n", res.DelinquentDensity)
	fmt.Printf("cycle breakdown  useful %.2f | worklist %.2f | load-miss %.2f | store-miss %.2f\n",
		res.Breakdown[0], res.Breakdown[1], res.Breakdown[2], res.Breakdown[3])
	fmt.Printf("avg enq/deq cyc  %.1f / %.1f\n", res.AvgEnqueueCycles, res.AvgDequeueCycles)
	if res.EnginePrefetches > 0 {
		fmt.Printf("engine prefetch  %d loads, efficiency %.3f\n", res.EnginePrefetches, res.PrefetchEfficiency)
	}
	if res.TimedOut {
		fmt.Println("NOTE: run exceeded its work budget (timed out)")
	}
	if l := res.Latency; l != nil {
		fmt.Printf("arrival latency  %d injected, %d retired\n", l.Injected, l.Retired)
		for _, c := range l.Classes {
			fmt.Printf("  class %-12s wait p50/p95/p99 %d/%d/%d  sojourn p50/p95/p99 %d/%d/%d\n",
				c.Class, c.WaitP50, c.WaitP95, c.WaitP99, c.SojournP50, c.SojournP95, c.SojournP99)
		}
	}
	if *timeline != "" {
		if werr := os.WriteFile(*timeline, res.TimelineJSON, 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "minnowsim:", werr)
			os.Exit(1)
		}
		fmt.Printf("timeline         %s (%d bytes; load at ui.perfetto.dev)\n", *timeline, len(res.TimelineJSON))
	}
	if *every > 0 {
		if werr := os.WriteFile(*metrics, []byte(res.IntervalCSV), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "minnowsim:", werr)
			os.Exit(1)
		}
		fmt.Printf("interval metrics %s (%d-cycle intervals)\n", *metrics, *every)
	}
	if *profile != "" {
		if werr := os.WriteFile(*profile, res.ProfilePprof, 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "minnowsim:", werr)
			os.Exit(1)
		}
		fmt.Printf("cycle profile    %s (%d bytes; `go tool pprof -top %s`)\n", *profile, len(res.ProfilePprof), *profile)
	}
	if *folded != "" {
		if werr := os.WriteFile(*folded, []byte(res.Folded), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "minnowsim:", werr)
			os.Exit(1)
		}
		fmt.Printf("folded stacks    %s (flamegraph.pl / speedscope)\n", *folded)
	}
	if res.TraceText != "" {
		fmt.Println()
		fmt.Print(res.TraceText)
	}
}
