// Command sweep runs a Cartesian grid of configurations over one
// benchmark and emits one CSV row per run — the general-purpose
// experiment driver behind ad-hoc studies that the fixed figure suite
// does not cover.
//
// Usage:
//
//	sweep -bench SSSP -threads 1,2,4,8 -sched obim,minnow -credits 32
//	sweep -bench CC -threads 8 -sched minnow -prefetch -credits 4,16,64,256 -out cc.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"minnow"
)

// intList parses "1,2,4" into ints.
func intList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		bench    = flag.String("bench", "SSSP", "benchmark: "+strings.Join(minnow.Benchmarks(), ", "))
		threads  = flag.String("threads", "8", "comma-separated thread counts")
		scheds   = flag.String("sched", "obim,minnow", "comma-separated schedulers (obim, fifo, lifo, strictpq, minnow)")
		credits  = flag.String("credits", "32", "comma-separated credit counts (minnow+prefetch runs)")
		prefetch = flag.Bool("prefetch", true, "enable worklist-directed prefetching for minnow runs")
		scale    = flag.Int("scale", 1, "input scale")
		seed     = flag.Uint64("seed", 42, "generator seed")
		split    = flag.Int("split", 512, "task-splitting threshold (0 = off)")
		out      = flag.String("out", "", "CSV output file (default stdout)")
	)
	flag.Parse()

	ths, err := intList(*threads)
	if err != nil {
		fail(err)
	}
	crs, err := intList(*credits)
	if err != nil {
		fail(err)
	}
	schedList := strings.Split(*scheds, ",")

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "bench,threads,scheduler,prefetch,credits,wall_cycles,tasks,instructions,l2_mpki,prefetch_efficiency,useful,worklist,load_miss,store_miss,timed_out")

	for _, th := range ths {
		for _, sched := range schedList {
			sched = strings.TrimSpace(sched)
			creditSet := []int{0}
			pf := false
			if sched == "minnow" && *prefetch {
				creditSet = crs
				pf = true
			}
			for _, cr := range creditSet {
				cfg := minnow.Config{
					Threads:        th,
					Scale:          *scale,
					Seed:           *seed,
					Scheduler:      sched,
					SplitThreshold: int32(*split),
				}
				if sched == "minnow" {
					cfg.Minnow = true
					cfg.Prefetch = pf
					cfg.Credits = cr
				}
				res, err := minnow.Run(*bench, cfg)
				if err != nil {
					fail(err)
				}
				fmt.Fprintf(w, "%s,%d,%s,%v,%d,%d,%d,%d,%.3f,%.4f,%.4f,%.4f,%.4f,%.4f,%v\n",
					*bench, th, sched, pf, cr,
					res.WallCycles, res.Tasks, res.Instructions,
					res.L2MPKI, res.PrefetchEfficiency,
					res.Breakdown[0], res.Breakdown[1], res.Breakdown[2], res.Breakdown[3],
					res.TimedOut)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
