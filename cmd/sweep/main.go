// Command sweep runs a Cartesian grid of configurations over one or more
// benchmarks and emits one CSV row per run — the general-purpose
// experiment driver behind ad-hoc studies that the fixed figure suite
// does not cover.
//
// Independent configurations fan out over a bounded worker pool
// (-jobs N, default = all CPUs); rows are always emitted in grid order,
// so the CSV is byte-identical for any -jobs value. With
// -verify-determinism the grid is instead run twice and the paired runs
// are compared (wall cycles, step counts, per-core statistics hash);
// any mismatch exits non-zero.
//
// With -chaos the grid flags are ignored and the fault-injection sweep
// runs instead: SSSP/BFS/CC under the Minnow scheduler, fault-free and
// under each canonical fault preset, invariants armed, every cell run
// twice to prove seed-reproducibility. -faults / -invariants apply a
// fault plan or the invariant checker to an ordinary grid sweep.
//
// Usage:
//
//	sweep -bench SSSP -threads 1,2,4,8 -sched obim,minnow -credits 32
//	sweep -bench CC -threads 8 -sched minnow -prefetch -credits 4,16,64,256 -out cc.csv
//	sweep -bench SSSP,CC,TC -sched obim,minnow -verify-determinism
//	sweep -chaos -threads 4 -chaos-out chaos-report.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"minnow"
)

// intList parses "1,2,4" into ints.
func intList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		bench    = flag.String("bench", "SSSP", "comma-separated benchmarks: "+strings.Join(minnow.Benchmarks(), ", "))
		threads  = flag.String("threads", "8", "comma-separated thread counts")
		scheds   = flag.String("sched", "obim,minnow", "comma-separated schedulers (obim, fifo, lifo, strictpq, minnow)")
		credits  = flag.String("credits", "32", "comma-separated credit counts (minnow+prefetch runs)")
		prefetch = flag.Bool("prefetch", true, "enable worklist-directed prefetching for minnow runs")
		scale    = flag.Int("scale", 1, "input scale")
		seed     = flag.Uint64("seed", 42, "generator seed")
		split    = flag.Int("split", 512, "task-splitting threshold (0 = off)")
		out      = flag.String("out", "", "CSV output file (default stdout)")
		jobs     = flag.Int("jobs", 0, "max concurrent simulations (0 = all CPUs, 1 = serial)")
		verify   = flag.Bool("verify-determinism", false, "run each configuration twice and compare results instead of emitting CSV")
		faults   = flag.String("faults", "", "apply a fault-injection plan to every run: preset or clause expression (see docs/ROBUSTNESS.md)")
		arrivals = flag.String("arrivals", "", "apply an open-loop arrival plan to every run: preset (steady, burst, waves, trickle) or clause expression (see EXPERIMENTS.md)")
		invar    = flag.Bool("invariants", false, "enable runtime invariant checking on every run")
		chaos    = flag.Bool("chaos", false, "run the fault-injection sweep instead of the grid (uses the first -threads value)")
		chaosOut = flag.String("chaos-out", "", "also write the chaos report to this file (written on failure too)")
		profDir  = flag.String("profile-dir", "", "write per-run cycle profiles (pprof + folded stacks) into this directory")
		intra    = flag.Int("intra-jobs", 0, "bound/weave engine workers inside each simulation (0 = serial engine; splits the host budget with -jobs, output byte-identical)")
		window   = flag.Int64("epoch-window", 0, "bound/weave epoch length in cycles (0 = default; needs -intra-jobs)")
		shareHz  = flag.Bool("shared-horizons", false, "conservative-lookahead horizons on every run: idle backoffs become bound-steppable private steps (changes the step schedule; byte-identical across -intra-jobs for a fixed setting)")
	)
	flag.Parse()

	ths, err := intList(*threads)
	if err != nil {
		fail(err)
	}
	// Split the host-thread budget: -jobs whole runs in flight, each with
	// -intra-jobs bound-phase workers. An explicit -jobs wins; the auto
	// value shrinks as -intra-jobs grows so the product fills the machine.
	*jobs, _ = minnow.SplitBudget(*jobs, *intra)

	if *chaos {
		report, cerr := minnow.RunChaos(minnow.Config{Threads: ths[0], Scale: *scale, Seed: *seed}, *jobs)
		if report != "" {
			fmt.Println(report)
			if *chaosOut != "" {
				if werr := os.WriteFile(*chaosOut, []byte(report+"\n"), 0o644); werr != nil {
					fail(werr)
				}
			}
		}
		if cerr != nil {
			fail(cerr)
		}
		fmt.Println("chaos sweep passed: all cells correct, deterministic, and invariant-clean")
		return
	}
	crs, err := intList(*credits)
	if err != nil {
		fail(err)
	}
	schedList := strings.Split(*scheds, ",")
	benchList := strings.Split(*bench, ",")

	// Build the request grid in deterministic nested order; results are
	// consumed in the same order below, so output never depends on -jobs.
	var reqs []minnow.RunRequest
	for _, b := range benchList {
		b = strings.TrimSpace(b)
		for _, th := range ths {
			for _, sched := range schedList {
				sched = strings.TrimSpace(sched)
				creditSet := []int{0}
				pf := false
				if sched == "minnow" && *prefetch {
					creditSet = crs
					pf = true
				}
				for _, cr := range creditSet {
					cfg := minnow.Config{
						Threads:        th,
						Scale:          *scale,
						Seed:           *seed,
						Scheduler:      sched,
						SplitThreshold: int32(*split),
						Faults:         *faults,
						Arrivals:       *arrivals,
						Invariants:     *invar,
						Profile:        *profDir != "",
						IntraJobs:      *intra,
						EpochWindow:    *window,
						SharedHorizons: *shareHz,
					}
					if sched == "minnow" {
						cfg.Minnow = true
						cfg.Prefetch = pf
						cfg.Credits = cr
					}
					reqs = append(reqs, minnow.RunRequest{Benchmark: b, Config: cfg})
				}
			}
		}
	}

	if *verify {
		verifyDeterminism(reqs, *jobs)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "bench,threads,scheduler,prefetch,credits,wall_cycles,tasks,instructions,l2_mpki,prefetch_efficiency,useful,worklist,load_miss,store_miss,timed_out")

	if *profDir != "" {
		if merr := os.MkdirAll(*profDir, 0o755); merr != nil {
			fail(merr)
		}
	}
	for _, rr := range minnow.RunMany(reqs, *jobs) {
		if rr.Err != nil {
			fail(rr.Err)
		}
		cfg, res := rr.Request.Config, rr.Result
		fmt.Fprintf(w, "%s,%d,%s,%v,%d,%d,%d,%d,%.3f,%.4f,%.4f,%.4f,%.4f,%.4f,%v\n",
			rr.Request.Benchmark, cfg.Threads, cfg.Scheduler, cfg.Prefetch, cfg.Credits,
			res.WallCycles, res.Tasks, res.Instructions,
			res.L2MPKI, res.PrefetchEfficiency,
			res.Breakdown[0], res.Breakdown[1], res.Breakdown[2], res.Breakdown[3],
			res.TimedOut)
		if *profDir != "" {
			stem := fmt.Sprintf("%s/%s_t%d_%s_pf%v_c%d",
				*profDir, rr.Request.Benchmark, cfg.Threads, cfg.Scheduler, cfg.Prefetch, cfg.Credits)
			if werr := os.WriteFile(stem+".pb.gz", res.ProfilePprof, 0o644); werr != nil {
				fail(werr)
			}
			if werr := os.WriteFile(stem+".folded", []byte(res.Folded), 0o644); werr != nil {
				fail(werr)
			}
		}
	}
}

// verifyDeterminism runs the grid twice, prints one line per
// configuration, and exits non-zero if any pair of runs diverged.
func verifyDeterminism(reqs []minnow.RunRequest, jobs int) {
	reports, err := minnow.VerifyDeterminism(reqs, jobs)
	if err != nil {
		fail(err)
	}
	bad := 0
	for i, rep := range reports {
		cfg := reqs[i].Config
		label := fmt.Sprintf("%s threads=%d sched=%s prefetch=%v credits=%d",
			rep.Benchmark, cfg.Threads, rep.Scheduler, cfg.Prefetch, cfg.Credits)
		if rep.OK() {
			fmt.Printf("PASS %s hash=%s\n", label, rep.Hash[:16])
			continue
		}
		bad++
		fmt.Printf("FAIL %s\n", label)
		for _, m := range rep.Mismatches {
			fmt.Printf("     %s\n", m)
		}
	}
	if bad > 0 {
		fail(fmt.Errorf("sweep: %d of %d configurations nondeterministic", bad, len(reports)))
	}
	fmt.Printf("determinism verified: %d configurations, 2 runs each, zero mismatches\n", len(reports))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
