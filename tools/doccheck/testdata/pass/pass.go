// Package pass is a doccheck fixture where every exported identifier is
// documented; checkDir must return zero problems.
package pass

// MaxWidgets bounds the widget pool.
const MaxWidgets = 8

// Registry holds widgets by name.
type Registry struct {
	// Widgets maps name to widget.
	Widgets map[string]int
	Count   int // Count is the live widget total.

	hidden int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers one widget.
func (r *Registry) Add(name string) { r.Count++ }

// unexported needs no comment.
func unexported() {}
