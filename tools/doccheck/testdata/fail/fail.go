// Package fail is a doccheck fixture exercising every reported
// identifier kind: an undocumented function, type, value, and field.
package fail

const BadConst = 1

type BadType struct {
	// Good is documented and must not be reported.
	Good int
	BadField int
}

// Documented group comment: per-identifier contracts still require each
// exported const to carry its own comment, so BadGrouped is reported.
const (
	BadGrouped = 2
	goodLower  = 3
)

func BadFunc() {}
