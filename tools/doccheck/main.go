// Command doccheck fails when an exported identifier in the audited
// packages lacks a doc comment. It guards the observability, statistics,
// and service surfaces (internal/obs, internal/trace, internal/stats,
// internal/prof, internal/inspect, internal/arrival, internal/service
// and its cache, journal, and tracing subpackages), whose doc comments
// carry the determinism and observe-only contracts the rest of the
// simulator is written against; the CI docs job runs it on every push.
//
// Usage:
//
//	go run ./tools/doccheck [package-dir ...]
//
// With no arguments the audited packages are checked. Exit status
// is non-zero if any exported const, var, type, function, method, or
// struct field is undocumented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs are the packages whose documentation the build gates on.
var defaultDirs = []string{
	"internal/obs",
	"internal/trace",
	"internal/stats",
	"internal/prof",
	"internal/inspect",
	"internal/arrival",
	"internal/service",
	"internal/service/cache",
	"internal/service/journal",
	"internal/service/tracing",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var problems []string
	for _, dir := range dirs {
		p, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doccheck: %d undocumented exported identifier(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns one
// line per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s is exported but undocumented",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc.Text() == "" {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return out, nil
}

// checkGenDecl walks const/var/type declarations. A doc comment on the
// grouped declaration covers a single spec; within groups each exported
// spec needs its own comment (matching the convention gofmt preserves).
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc.Text()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && groupDoc == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
				report(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				checkFields(s.Name.Name, st, report)
			}
		case *ast.ValueSpec:
			// A doc comment on the group (e.g. one comment over a const
			// block enumerating related values) is NOT enough here: each
			// exported const/var inside must carry its own comment, since
			// these packages promise per-identifier contracts.
			doc := s.Doc.Text() + s.Comment.Text()
			if len(d.Specs) == 1 {
				doc += groupDoc
			}
			for _, n := range s.Names {
				if n.IsExported() && doc == "" {
					report(n.Pos(), "value", n.Name)
				}
			}
		}
	}
}

// checkFields requires a doc or trailing comment on every exported field
// of an exported struct.
func checkFields(typeName string, st *ast.StructType, report func(token.Pos, string, string)) {
	for _, f := range st.Fields.List {
		if f.Doc.Text() != "" || f.Comment.Text() != "" {
			continue
		}
		for _, n := range f.Names {
			if n.IsExported() {
				report(n.Pos(), "field", typeName+"."+n.Name)
			}
		}
	}
}
