package main

import (
	"strings"
	"testing"
)

// TestCheckDirPass runs the checker over the fully documented fixture;
// any report is a false positive.
func TestCheckDirPass(t *testing.T) {
	problems, err := checkDir("testdata/pass")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("documented fixture reported %d problems:\n%s",
			len(problems), strings.Join(problems, "\n"))
	}
}

// TestCheckDirFail pins the failing fixture: exactly the five planted
// undocumented identifiers are reported, one per kind, and nothing else
// (documented fields, unexported names) leaks in.
func TestCheckDirFail(t *testing.T) {
	problems, err := checkDir("testdata/fail")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"function BadFunc is exported but undocumented",
		"type BadType is exported but undocumented",
		"value BadConst is exported but undocumented",
		"value BadGrouped is exported but undocumented",
		"field BadType.BadField is exported but undocumented",
	}
	if len(problems) != len(want) {
		t.Errorf("got %d problems, want %d:\n%s", len(problems), len(want), strings.Join(problems, "\n"))
	}
	joined := strings.Join(problems, "\n")
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Errorf("missing expected report %q in:\n%s", w, joined)
		}
	}
	for _, absent := range []string{"Good", "goodLower", "hidden"} {
		for _, p := range problems {
			if strings.Contains(p, absent) {
				t.Errorf("false positive on %s: %s", absent, p)
			}
		}
	}
	// Reports carry file:line anchors so CI output is clickable.
	if !strings.Contains(joined, "testdata/fail/fail.go:") {
		t.Errorf("reports lack file:line positions:\n%s", joined)
	}
}

// TestCheckDirMissing verifies a bad path is a hard error (exit 2 in
// main), not an empty pass.
func TestCheckDirMissing(t *testing.T) {
	if _, err := checkDir("testdata/no-such-dir"); err == nil {
		t.Error("checkDir on a missing directory returned nil error")
	}
}

// TestAuditedPackagesDocumented runs the real gate from the test suite:
// the audited packages must stay fully documented, so a regression fails
// `go test ./...` even before the CI docs job runs.
func TestAuditedPackagesDocumented(t *testing.T) {
	for _, dir := range defaultDirs {
		problems, err := checkDir("../../" + dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if len(problems) != 0 {
			t.Errorf("%s: %d undocumented exported identifiers:\n%s",
				dir, len(problems), strings.Join(problems, "\n"))
		}
	}
}
