// Command linkcheck verifies that relative markdown links resolve.
//
// It walks the markdown files named on the command line (default: every
// *.md in the repository root and docs/), extracts [text](target)
// links, and checks each relative target exists on disk, resolving
// against the linking file's directory. External links (http, https,
// mailto) and intra-page fragments (#...) are skipped — this is a
// repo-consistency gate, not a crawler. A fragment on a relative link
// (FILE.md#section) is stripped before the existence check.
//
// Exit status is nonzero when any link is broken, so CI can gate a
// documentation pass on it; every broken link is reported as
// file:line: target.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRE matches inline markdown links. It deliberately keeps the
// target lazy and bans whitespace/parens inside, which is enough for
// this repo's docs and avoids false matches on code snippets.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		var err error
		files, err = defaultFiles()
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
	}
	var broken []string
	checked := 0
	for _, f := range files {
		b, c, err := checkFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
		broken = append(broken, b...)
		checked += c
	}
	for _, b := range broken {
		fmt.Println(b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s) of %d checked\n", len(broken), checked)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d relative link(s) across %d file(s) all resolve\n", checked, len(files))
}

// defaultFiles collects the repository's top-level and docs/ markdown.
func defaultFiles() ([]string, error) {
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md", "examples/*/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			return nil, err
		}
		files = append(files, m...)
	}
	sort.Strings(files)
	return files, nil
}

// checkFile returns the broken-link reports for one markdown file and
// the number of relative links it checked.
func checkFile(path string) (broken []string, checked int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	dir := filepath.Dir(path)
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			checked++
			if _, statErr := os.Stat(filepath.Join(dir, target)); statErr != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: %s", path, i+1, m[1]))
			}
		}
	}
	return broken, checked, nil
}
