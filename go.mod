module minnow

go 1.24
