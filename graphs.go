package minnow

import (
	"fmt"
	"io"

	"minnow/internal/core"
	"minnow/internal/graph"
	"minnow/internal/harness"
	"minnow/internal/kernels"
	"minnow/internal/worklist"
)

// Graph is an immutable CSR graph usable with RunGraph. Construct one
// with a generator (NewRoadMesh etc.), LoadGraph, or NewGraphFromEdges.
type Graph struct {
	g *graph.Graph
}

// Name returns the graph's label.
func (g *Graph) Name() string { return g.g.Name }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.g.N }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.g.Weights != nil }

// View returns the read-only structural view used by custom prefetch
// functions.
func (g *Graph) View() GraphView { return GraphView{g: g.g} }

// Save writes the graph in the binary CSR format understood by LoadGraph
// and `graphgen -save`.
func (g *Graph) Save(w io.Writer) error { return g.g.Save(w) }

// LoadGraph reads a binary CSR graph written by Save.
func LoadGraph(r io.Reader) (*Graph, error) {
	gg, err := graph.Load(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: gg}, nil
}

// Edge is one directed edge for NewGraphFromEdges. Weight is ignored
// unless weighted graphs are requested.
type Edge struct {
	From, To int32
	Weight   int32
}

// NewGraphFromEdges builds a CSR graph from an edge list (duplicates and
// self-loops are dropped; rows are sorted by destination).
func NewGraphFromEdges(name string, nodes int, edges []Edge, weighted bool) (*Graph, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("minnow: graph needs at least one node")
	}
	b := graph.NewBuilder(nodes, weighted)
	for _, e := range edges {
		if e.From < 0 || int(e.From) >= nodes || e.To < 0 || int(e.To) >= nodes {
			return nil, fmt.Errorf("minnow: edge %d->%d out of range [0,%d)", e.From, e.To, nodes)
		}
		if weighted {
			w := e.Weight
			if w <= 0 {
				w = 1
			}
			b.AddWeighted(e.From, e.To, w)
		} else {
			b.AddEdge(e.From, e.To)
		}
	}
	g := b.Build(name)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Generators mirroring the Table-1 input classes, exposed for users who
// want to run the kernels on differently-sized inputs.

// NewRoadMesh generates a weighted road-network-like mesh (USA-road
// class: high diameter, degree ~4).
func NewRoadMesh(nodes int, seed uint64) *Graph {
	return &Graph{g: graph.RoadMesh(nodes, seed)}
}

// NewUniformRandom generates an r4-class uniform random graph.
func NewUniformRandom(nodes, avgDegree int, seed uint64) *Graph {
	return &Graph{g: graph.UniformRandom(nodes, avgDegree, seed)}
}

// NewKronecker generates a Graph500-class R-MAT graph of 2^scale nodes.
func NewKronecker(scale, edgeFactor int, seed uint64) *Graph {
	return &Graph{g: graph.Kronecker(scale, edgeFactor, seed)}
}

// NewSmallWorld generates a wikipedia-class small-world graph.
func NewSmallWorld(nodes, degree int, seed uint64) *Graph {
	return &Graph{g: graph.SmallWorld(nodes, degree, seed)}
}

// NewPowerLawTalk generates a wiki-Talk-class skewed directed graph.
func NewPowerLawTalk(nodes int, seed uint64) *Graph {
	return &Graph{g: graph.PowerLawTalk(nodes, seed)}
}

// NewCommunityGraph generates a com-dblp-class clique-community graph
// (triangle-rich).
func NewCommunityGraph(nodes int, seed uint64) *Graph {
	return &Graph{g: graph.CommunityDBLP(nodes, seed)}
}

// NewBipartite generates an amazon-ratings-class bipartite graph (users
// first, then items).
func NewBipartite(users, items int, seed uint64) *Graph {
	return &Graph{g: graph.Bipartite(users, items, seed)}
}

// RunGraph simulates a benchmark kernel over a user-provided graph.
// Requirements per kernel: SSSP needs a weighted graph; BC expects the
// graph to be checked for 2-colorability (non-bipartite inputs report a
// conflict rather than failing); TC treats the graph as undirected.
// Source-based kernels (SSSP, BFS, G500) start from node `source`
// (ignored by the others).
func RunGraph(benchmark string, g *Graph, source int32, cfg Config) (*Result, error) {
	if g == nil || g.g == nil {
		return nil, fmt.Errorf("minnow: nil graph")
	}
	if source < 0 || int(source) >= g.g.N {
		return nil, fmt.Errorf("minnow: source %d out of range [0,%d)", source, g.g.N)
	}
	if benchmark == "SSSP" && g.g.Weights == nil {
		return nil, fmt.Errorf("minnow: SSSP requires a weighted graph (see NewRoadMesh or NewGraphFromEdges weighted=true)")
	}
	spec, err := kernels.SpecByName(benchmark)
	if err != nil {
		return nil, err
	}
	// Wrap the user's graph in a build function that clones its topology
	// into the harness's address space. CSR slices are shared read-only;
	// the binding (addresses) is per-run.
	userGraph := g.g
	var bound *graph.Graph // the per-run bound clone (set by Build)
	spec.Build = func(_ int, _ uint64, as *graph.AddrSpace, cores int) kernels.Kernel {
		gg := &graph.Graph{
			Name:    userGraph.Name,
			N:       userGraph.N,
			Offsets: userGraph.Offsets,
			Dests:   userGraph.Dests,
			Weights: userGraph.Weights,
		}
		gg.Bind(as, benchmark == "TC")
		bound = gg
		switch benchmark {
		case "SSSP":
			return kernels.NewSSSP(gg, source, as, cores)
		case "BFS", "G500":
			return kernels.NewBFS(benchmark, gg, source, as, cores)
		case "CC":
			return kernels.NewCC(gg, as, cores)
		case "PR":
			return kernels.NewPR(gg, as, cores)
		case "TC":
			return kernels.NewTC(gg, as, cores)
		case "BC":
			return kernels.NewBC(gg, as, cores)
		case "KCORE":
			return kernels.NewKCore(gg, as, cores)
		}
		panic("unreachable: SpecByName validated the name")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o, err := cfg.toOptions()
	if err != nil {
		return nil, err
	}
	if cfg.CustomPrefetch != nil {
		f := cfg.CustomPrefetch
		// Build runs (and sets `bound`) before any engine starts.
		o.CustomPrefetch = &core.FuncProgram{F: func(t worklist.Task, emit func(addrs ...uint64)) {
			f(Task{Priority: t.Priority, Node: t.Node, EdgeLo: t.EdgeLo, EdgeHi: t.EdgeHi},
				GraphView{g: bound}, emit)
		}}
	}
	r, err := harness.Run(spec, o)
	if err != nil {
		return nil, err
	}
	return resultFrom(benchmark, r), nil
}
