// Package minnow is a simulation-based reproduction of "Minnow:
// Lightweight Offload Engines for Worklist Management and
// Worklist-Directed Prefetching" (Zhang, Ma, Thomson, Chiou — ASPLOS
// 2018).
//
// It bundles a deterministic discrete-event CMP simulator (out-of-order
// cores, three-level cache hierarchy with a mesh NoC and DDR channels), a
// Galois-like parallel task framework with OBIM/FIFO/LIFO/strict-priority
// worklists, the Minnow engine itself (worklist offload plus credit-
// throttled worklist-directed prefetching), hardware-prefetcher and
// GraphMat-style baselines, and the paper's seven graph benchmarks with
// synthetic input generators.
//
// Quick start:
//
//	res, err := minnow.Run("SSSP", minnow.Config{Threads: 8, Minnow: true, Prefetch: true})
//
// Every table and figure from the paper's evaluation can be regenerated
// through RenderFigure (or the cmd/figures binary).
package minnow

import (
	"fmt"
	"sort"

	"minnow/internal/arrival"
	"minnow/internal/core"
	"minnow/internal/cpu"
	"minnow/internal/fault"
	"minnow/internal/graph"
	"minnow/internal/harness"
	"minnow/internal/kernels"
	"minnow/internal/stats"
	"minnow/internal/worklist"
)

// Config selects the simulated system and scheduler for a Run.
type Config struct {
	// Threads is the core count (default 8; the paper evaluates 64).
	Threads int
	// Scale multiplies the default input sizes (default 1).
	Scale int
	// Seed drives the graph generators (default 42).
	Seed uint64

	// Minnow attaches a Minnow engine to every core and offloads the
	// worklist to it; otherwise the software scheduler below is used.
	Minnow bool
	// Prefetch enables worklist-directed prefetching (requires Minnow).
	Prefetch bool
	// Credits sets the prefetch credit pool (default 32, §5.3.1).
	Credits int

	// Scheduler picks the software worklist when Minnow is false:
	// "obim" (default), "fifo", "lifo", or "strictpq".
	Scheduler string
	// LgInterval overrides the OBIM/Minnow bucket interval (log2); nil
	// uses each benchmark's tuned default.
	LgInterval *uint

	// HWPrefetcher attaches a baseline hardware prefetcher to each core:
	// "stride" or "imp".
	HWPrefetcher string

	// SplitThreshold breaks tasks with more edges into subtasks
	// (§6.2.1); 0 disables splitting.
	SplitThreshold int32
	// WorkBudget aborts runs after this many operator applications
	// (0 = unlimited); aborted runs report TimedOut.
	WorkBudget int64
	// Serial elides atomics (the optimized 1-thread serial baseline).
	Serial bool
	// MemChannels sets the DRAM channel count (default 12).
	MemChannels int
	// PerfectBP / NoFences idealize the cores (Fig. 4 modes).
	PerfectBP, NoFences bool

	// CustomPrefetch overrides the benchmark's prefetch program (§5.3's
	// user-written prefetch function hook). Requires Minnow+Prefetch.
	CustomPrefetch PrefetchFunc

	// SkipVerify disables the post-run check against the reference
	// implementation.
	SkipVerify bool

	// TraceEvents records the last N Minnow engine events; the rendered
	// log is returned in Result.TraceText (requires Minnow).
	TraceEvents int

	// MetricsEvery samples the time-series metrics (per-core IPC,
	// worklist occupancy, interval MPKI, prefetch accuracy, credit pool,
	// NoC/DRAM activity) every N simulated cycles; the interval CSV is
	// returned in Result.IntervalCSV. 0 disables sampling.
	MetricsEvery int64
	// Timeline records a full-system event timeline (task spans, stalls,
	// cache misses, engine spill/fill/prefetch activity, counter tracks);
	// the Chrome-trace/Perfetto JSON is returned in Result.TimelineJSON.
	Timeline bool
	// Profile enables the top-down cycle-attribution profiler: every core
	// cycle is refined into stall cause × serving level × prefetch
	// outcome, keyed by attribution site. The folded-stack rendering is
	// returned in Result.Folded and the pprof protobuf in
	// Result.ProfilePprof. Off by default; observe-only.
	Profile bool
	// OnSample, when non-nil, is invoked at every crossed metrics-sample
	// boundary with the boundary's simulated cycle and the latest metrics
	// row in Prometheus text format (the live run inspector's feed).
	// Requires MetricsEvery > 0. The callback must not mutate simulation
	// state; it runs on the simulation goroutine.
	OnSample func(cycles int64, metrics string)
	// Cancel, when non-nil, is a cooperative cancellation hook polled on
	// the watchdog cadence (every few tens of thousands of actor steps).
	// When it returns true the run is abandoned: Run returns an error
	// wrapping ErrCanceled and no Result. Like OnSample and
	// CustomPrefetch this is a host-only knob — it is not expressible in
	// JSON job submissions and is excluded from the service's cache key;
	// a run the hook never fires on is byte-identical to one without it.
	Cancel func() bool

	// Faults arms the deterministic fault-injection plan: a preset name
	// ("transient", "offline", "chaos") or a clause expression such as
	// "seed=7;engine-stall:p=0.01,cycles=400;engine-offline:at=50000".
	// Empty disables injection. See docs/ROBUSTNESS.md for the grammar.
	Faults string
	// Arrivals arms the deterministic open-loop arrival plan: a preset
	// name ("steady", "burst", "waves", "trickle") or a clause expression
	// such as "seed=1;poisson:gap=600,count=400". Tasks are injected into
	// the live worklists at seeded, pre-scheduled cycles and their
	// queue-wait and sojourn percentiles are reported per arrival class
	// in Result.Latency. Empty keeps the run closed-loop. Only
	// re-entrant-operator benchmarks accept arrivals (not TC or BC). See
	// EXPERIMENTS.md's open-loop latency walkthrough for the grammar.
	Arrivals string
	// Invariants enables the runtime invariant checker (task
	// conservation, credit-pool accounting, cache/directory sanity) and
	// arms the no-progress watchdog.
	Invariants bool
	// MaxCycles halts runs whose simulated clock passes this bound with a
	// diagnostic snapshot instead of hanging (0 = a large default).
	MaxCycles int64

	// IntraJobs selects the simulation kernel's execution mode: 0 (the
	// default) is the classic serial engine; n >= 1 runs the epoch-based
	// bound/weave engine with n host workers stepping provably
	// independent actors concurrently inside each epoch. Results are
	// byte-identical for every value — the differential equivalence suite
	// pins the contract — so this is purely a host-time knob.
	IntraJobs int
	// EpochWindow sets the bound/weave epoch length in cycles when
	// IntraJobs >= 1 (0 selects the default). Like IntraJobs it never
	// changes simulation output.
	EpochWindow int64
	// SharedHorizons enables conservative-lookahead horizons for
	// shared-machine runs: idle worker backoffs become private steps the
	// bound/weave engine can execute concurrently, so a single big
	// simulation gains bound-phase coverage instead of only the
	// isolated-copy rate harness. Unlike IntraJobs/EpochWindow this DOES
	// change the step schedule (each idle wait splits into poll + wait),
	// so results are comparable only among runs with the same setting;
	// for a fixed setting output remains byte-identical across engines
	// and worker counts.
	SharedHorizons bool
}

// Validate rejects nonsensical configurations with a descriptive error
// before any simulation state is built. The zero value of every field is
// valid — it selects the documented default. Run, RunGraph, and the
// parallel runners all call this; command-line frontends can call it
// early to fail fast on bad flags.
//
// Error-message contract: every message has the form
// "minnow: <Field>: <reason>", naming the offending Config field first.
// These strings surface verbatim in minnowd's HTTP 400 bodies (see
// docs/SERVICE.md), so clients may dispatch on the field prefix;
// TestValidateErrorForm pins the exact texts.
func (c Config) Validate() error {
	switch {
	case c.Threads < 0:
		return fmt.Errorf("minnow: Threads: %d is negative (0 selects the default of 8)", c.Threads)
	case c.Threads > 64:
		return fmt.Errorf("minnow: Threads: %d exceeds 64, the coherence directory's sharer-mask width", c.Threads)
	case c.Scale < 0:
		return fmt.Errorf("minnow: Scale: %d is negative (0 selects the default of 1)", c.Scale)
	case c.Credits < 0:
		return fmt.Errorf("minnow: Credits: %d is negative — the prefetch credit pool needs at least one credit (0 selects the default of 32)", c.Credits)
	case c.SplitThreshold < 0:
		return fmt.Errorf("minnow: SplitThreshold: %d is negative (0 disables task splitting)", c.SplitThreshold)
	case c.WorkBudget < 0:
		return fmt.Errorf("minnow: WorkBudget: %d is negative (0 means unlimited)", c.WorkBudget)
	case c.MemChannels < 0:
		return fmt.Errorf("minnow: MemChannels: %d is negative (0 selects the default of 12)", c.MemChannels)
	case c.TraceEvents < 0:
		return fmt.Errorf("minnow: TraceEvents: %d is negative (0 disables event tracing)", c.TraceEvents)
	case c.MetricsEvery < 0:
		return fmt.Errorf("minnow: MetricsEvery: %d is negative (0 disables interval sampling)", c.MetricsEvery)
	case c.MaxCycles < 0:
		return fmt.Errorf("minnow: MaxCycles: %d is negative (0 selects a large default)", c.MaxCycles)
	case c.Serial && c.Threads > 1:
		return fmt.Errorf("minnow: Serial: elides atomics and is only sound with one thread (got Threads=%d)", c.Threads)
	case c.Prefetch && !c.Minnow:
		return fmt.Errorf("minnow: Prefetch: worklist-directed prefetching requires Minnow")
	case c.CustomPrefetch != nil && (!c.Minnow || !c.Prefetch):
		return fmt.Errorf("minnow: CustomPrefetch: requires Minnow and Prefetch")
	case c.Minnow && c.Scheduler != "" && c.Scheduler != "minnow":
		return fmt.Errorf("minnow: Scheduler: %q conflicts with Minnow — the engine owns the worklist", c.Scheduler)
	case c.OnSample != nil && c.MetricsEvery <= 0:
		return fmt.Errorf("minnow: OnSample: fires at metrics-sample boundaries and requires MetricsEvery > 0")
	case c.IntraJobs < 0:
		return fmt.Errorf("minnow: IntraJobs: %d is negative (0 selects the serial engine, n >= 1 the bound/weave engine with n workers)", c.IntraJobs)
	case c.EpochWindow < 0:
		return fmt.Errorf("minnow: EpochWindow: %d is negative (0 selects the default window)", c.EpochWindow)
	case c.EpochWindow > 0 && c.IntraJobs <= 0:
		return fmt.Errorf("minnow: EpochWindow: tunes the bound/weave engine and requires IntraJobs >= 1")
	}
	switch c.Scheduler {
	case "", "obim", "fifo", "lifo", "strictpq", "minnow":
	default:
		return fmt.Errorf("minnow: Scheduler: unknown %q (want obim, fifo, lifo, strictpq, or minnow)", c.Scheduler)
	}
	switch c.HWPrefetcher {
	case "", "stride", "imp":
	default:
		return fmt.Errorf("minnow: HWPrefetcher: unknown %q (want stride or imp)", c.HWPrefetcher)
	}
	if c.Faults != "" {
		if _, err := fault.ParsePlan(c.Faults); err != nil {
			return fmt.Errorf("minnow: Faults: invalid plan: %w", err)
		}
	}
	if c.Arrivals != "" {
		if _, err := arrival.ParsePlan(c.Arrivals); err != nil {
			return fmt.Errorf("minnow: Arrivals: invalid plan: %w", err)
		}
	}
	return nil
}

// Result reports a simulated run's headline metrics.
type Result struct {
	Benchmark  string
	Threads    int
	WallCycles int64 // end-to-end simulated cycles
	Tasks      int64 // operator applications (work-efficiency metric)
	TimedOut   bool

	// SimSteps is the number of discrete-event actor steps the run
	// executed; BoundSteps is how many of them ran inside bound/weave
	// bound phases (Config.IntraJobs >= 1) — the single-run concurrency
	// Config.SharedHorizons buys. BoundSteps is a host-execution metric
	// excluded from SummaryHash: it varies with IntraJobs/EpochWindow
	// while the simulated outcome stays byte-identical.
	SimSteps   int64
	BoundSteps int64

	// SummaryHash is the sha256 fingerprint of the run's deterministic
	// summary (stats.RunSummary) — the value the determinism and
	// serial/parallel equivalence checks compare. Always non-empty.
	SummaryHash string
	// SummaryJSON is the canonical stats.RunSummary JSON the hash is
	// computed over: the complete deterministic digest of the run (wall
	// cycles, per-core/cache/engine counters, fault totals). Two runs of
	// the same configuration produce byte-identical SummaryJSON — the
	// property minnowd's content-addressed result cache is built on.
	// Always non-nil.
	SummaryJSON []byte

	L2MPKI             float64    // demand L2 misses per kilo-instruction
	PrefetchEfficiency float64    // used-before-eviction / prefetch fills
	DelinquentDensity  float64    // Fig. 6 metric
	Breakdown          [4]float64 // useful / worklist / load-miss / store-miss
	Instructions       int64
	EnginePrefetches   int64
	AvgEnqueueCycles   float64
	AvgDequeueCycles   float64

	// TraceText is the rendered engine event log (Config.TraceEvents).
	TraceText string
	// IntervalCSV is the time-series metrics table, one row per sampling
	// interval (Config.MetricsEvery). Empty when sampling was off.
	IntervalCSV string
	// TimelineJSON is the Chrome-trace/Perfetto rendering of the run's
	// event timeline (Config.Timeline); load it at ui.perfetto.dev. Nil
	// when timeline collection was off.
	TimelineJSON []byte
	// Folded is the profiler's folded-stack rendering (Config.Profile),
	// one "frame;frame;... cycles" line per attribution leaf — feed it to
	// flamegraph.pl or speedscope. Empty when profiling was off.
	Folded string
	// ProfilePprof is the profiler's gzipped pprof protobuf of simulated
	// cycles (Config.Profile) — inspect with `go tool pprof`. Nil when
	// profiling was off.
	ProfilePprof []byte

	// Faults counts the faults actually injected (Config.Faults). Nil
	// when fault injection was off.
	Faults *FaultReport

	// Latency reports open-loop arrival latency (Config.Arrivals). Nil
	// when the run was closed-loop.
	Latency *LatencyReport
}

// FaultReport summarizes one run's injected faults. Every counter is
// deterministic: the same Config (plan and seed included) reproduces the
// same report bit for bit.
type FaultReport struct {
	EngineStalls     int64 // transient engine back-end freezes
	NoCDelays        int64 // delayed mesh hops
	DRAMRetries      int64 // DRAM accesses that needed retries
	SpillRetries     int64 // spill lock acquisitions retried with backoff
	CreditsLost      int64 // prefetch credit-return messages dropped
	CreditsRecovered int64 // credits restored by leak recovery
	EnginesOffline   int64 // engines killed permanently mid-run
	TasksRescued     int64 // tasks drained from dead engines into software
}

// LatencyReport summarizes one open-loop run's arrival latency. Like
// FaultReport it is deterministic: the same Config (arrival plan and
// seed included) reproduces the same report bit for bit.
type LatencyReport struct {
	// Injected counts arrival tasks delivered to the run; Retired counts
	// those whose operator application completed. A drained run retires
	// every injected task.
	Injected, Retired int64
	// Classes holds per-arrival-class latency percentiles in clause
	// order.
	Classes []ClassLatency
}

// ClassLatency reports one arrival class's latency percentiles in
// simulated cycles: queue wait is birth to dequeue, sojourn is birth to
// operator completion.
type ClassLatency struct {
	// Class labels the generating clause, e.g. "0:poisson".
	Class string
	// Injected and Retired count this class's delivered and completed
	// arrivals.
	Injected, Retired int64
	// WaitP50, WaitP95, and WaitP99 are exact nearest-rank queue-wait
	// percentiles.
	WaitP50, WaitP95, WaitP99 int64
	// SojournP50, SojournP95, and SojournP99 are exact nearest-rank
	// sojourn percentiles.
	SojournP50, SojournP95, SojournP99 int64
}

// SplitBudget divides the host-thread budget between run-level
// parallelism (jobs: independent runs in flight) and intra-run
// parallelism (intraJobs: bound/weave workers inside each simulation).
// A non-positive jobs resolves to NumCPU divided by the effective intra
// width so jobs x intraJobs roughly fills the machine; intraJobs passes
// through unchanged (0 keeps the serial engine).
func SplitBudget(jobs, intraJobs int) (int, int) {
	return harness.SplitBudget(jobs, intraJobs)
}

// Benchmarks lists the available workloads: the paper's Table-2 suite
// plus extensions (currently KCORE, the §8 future-work demonstration).
func Benchmarks() []string {
	var out []string
	for _, s := range kernels.Suite() {
		out = append(out, s.Name)
	}
	for _, s := range kernels.Extensions() {
		out = append(out, s.Name)
	}
	return out
}

// toOptions converts the public config to harness options. The only
// error source is an unparseable Faults plan, which Validate also
// rejects.
func (c Config) toOptions() (harness.Options, error) {
	o := harness.Options{
		Threads:        c.Threads,
		Scale:          c.Scale,
		Seed:           c.Seed,
		Scheduler:      c.Scheduler,
		Prefetch:       c.Prefetch,
		Credits:        c.Credits,
		HWPrefetcher:   c.HWPrefetcher,
		SplitThreshold: c.SplitThreshold,
		WorkBudget:     c.WorkBudget,
		Serial:         c.Serial,
		MemChannels:    c.MemChannels,
		SkipVerify:     c.SkipVerify,
		TraceEvents:    c.TraceEvents,
		MetricsEvery:   c.MetricsEvery,
		Timeline:       c.Timeline,
		Profile:        c.Profile,
		OnSample:       c.OnSample,
		Cancel:         c.Cancel,
		Invariants:     c.Invariants,
		MaxCycles:      c.MaxCycles,
		IntraJobs:      c.IntraJobs,
		EpochWindow:    c.EpochWindow,
		SharedHorizons: c.SharedHorizons,
	}
	if c.Minnow {
		o.Scheduler = "minnow"
	}
	if c.LgInterval != nil {
		o.LgInterval = *c.LgInterval
		o.LgIntervalSet = true
	}
	if c.PerfectBP || c.NoFences {
		cfg := cpu.DefaultConfig()
		cfg.PerfectBP = c.PerfectBP
		cfg.NoFences = c.NoFences
		o.CoreCfg = &cfg
	}
	if c.Faults != "" {
		plan, err := fault.ParsePlan(c.Faults)
		if err != nil {
			return o, fmt.Errorf("minnow: Faults: invalid plan: %w", err)
		}
		o.Faults = plan
	}
	if c.Arrivals != "" {
		plan, err := arrival.ParsePlan(c.Arrivals)
		if err != nil {
			return o, fmt.Errorf("minnow: Arrivals: invalid plan: %w", err)
		}
		o.Arrivals = plan
	}
	return o, nil
}

// ErrCanceled reports that a run was abandoned by the Config.Cancel
// hook. Errors returned by Run and RunGraph wrap it, so hosts can
// distinguish cancellation from real failures with errors.Is.
var ErrCanceled = harness.ErrCanceled

// Run simulates one benchmark under the configuration and verifies its
// result against the reference implementation.
func Run(benchmark string, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := kernels.SpecByName(benchmark)
	if err != nil {
		return nil, err
	}
	o, err := cfg.toOptions()
	if err != nil {
		return nil, err
	}
	if cfg.CustomPrefetch != nil {
		o.CustomPrefetch = adaptPrefetch(spec, o, cfg.CustomPrefetch)
	}
	r, err := harness.Run(spec, o)
	if err != nil {
		return nil, err
	}
	return resultFrom(benchmark, r), nil
}

// resultFrom assembles the public result from a harness run.
func resultFrom(benchmark string, r *stats.Run) *Result {
	sum := r.SumCores()
	summary := r.Summary()
	res := &Result{
		Benchmark:          benchmark,
		Threads:            r.Threads,
		WallCycles:         r.WallCycles,
		Tasks:              r.WorkItems,
		TimedOut:           r.TimedOut,
		SimSteps:           r.SimSteps,
		BoundSteps:         r.BoundSteps,
		SummaryHash:        summary.Hash(),
		SummaryJSON:        summary.JSON(),
		L2MPKI:             r.L2MPKI(),
		PrefetchEfficiency: r.L2.Efficiency(),
		DelinquentDensity:  r.DelinquentDensity(),
		Breakdown:          r.Breakdown(),
		Instructions:       sum.Instrs,
		AvgEnqueueCycles:   r.AvgEnqCycles(),
		AvgDequeueCycles:   r.AvgDeqCycles(),
	}
	for _, e := range r.Engines {
		res.EnginePrefetches += e.Prefetches
	}
	if r.Trace != nil {
		res.TraceText = r.Trace.String()
	}
	if r.Intervals != nil {
		res.IntervalCSV = r.Intervals.CSV()
	}
	if r.Timeline != nil {
		res.TimelineJSON = r.Timeline.Perfetto()
	}
	if r.Profile != nil {
		res.Folded = r.Profile.Folded()
		res.ProfilePprof = r.Profile.Pprof()
	}
	if f := r.Faults; f != nil {
		res.Faults = &FaultReport{
			EngineStalls:     f.EngineStalls,
			NoCDelays:        f.NoCDelays,
			DRAMRetries:      f.DRAMRetries,
			SpillRetries:     f.SpillRetries,
			CreditsLost:      f.CreditsLost,
			CreditsRecovered: f.CreditsRecovered,
			EnginesOffline:   f.EnginesOffline,
			TasksRescued:     f.Rescued,
		}
	}
	if l := r.Latency; l != nil {
		lr := &LatencyReport{Injected: l.Injected, Retired: l.Retired}
		for _, c := range l.Classes {
			lr.Classes = append(lr.Classes, ClassLatency{
				Class:      c.Class,
				Injected:   c.Injected,
				Retired:    c.Retired,
				WaitP50:    c.WaitP50,
				WaitP95:    c.WaitP95,
				WaitP99:    c.WaitP99,
				SojournP50: c.SojournP50,
				SojournP95: c.SojournP95,
				SojournP99: c.SojournP99,
			})
		}
		res.Latency = lr
	}
	return res
}

// Task identifies one scheduled unit of work, exposed to custom prefetch
// functions.
type Task struct {
	Priority       int64
	Node           int32
	EdgeLo, EdgeHi int32 // EdgeHi < 0: the whole node
}

// GraphView gives custom prefetch functions read access to the input
// graph's structure and simulated address layout.
type GraphView struct {
	g *graph.Graph
}

// NumNodes returns the node count.
func (v GraphView) NumNodes() int { return v.g.N }

// Degree returns node n's out-degree.
func (v GraphView) Degree(n int32) int32 { return v.g.Degree(n) }

// EdgeRange returns the CSR index range of n's outgoing edges.
func (v GraphView) EdgeRange(n int32) (lo, hi int32) { return v.g.EdgeRange(n) }

// Dest returns the destination of CSR edge i.
func (v GraphView) Dest(i int32) int32 { return v.g.Dests[i] }

// NodeAddr returns the simulated address of node n's record.
func (v GraphView) NodeAddr(n int32) uint64 { return v.g.NodeAddr(n) }

// EdgeAddr returns the simulated address of CSR edge i.
func (v GraphView) EdgeAddr(i int32) uint64 { return v.g.EdgeAddr(i) }

// PrefetchFunc is a user-written prefetch helper (§5.3): called once per
// scheduled task; each emit(addrs...) call becomes one engine threadlet
// whose loads issue sequentially (each address may depend on the previous
// load's data); separate emits overlap in the engine's load buffer.
type PrefetchFunc func(t Task, g GraphView, emit func(addrs ...uint64))

// adaptPrefetch bridges the public PrefetchFunc onto the engine's
// program interface for the benchmark's graph.
func adaptPrefetch(spec kernels.Spec, o harness.Options, f PrefetchFunc) core.PrefetchProgram {
	// The kernel (and its graph) are rebuilt inside harness.Run; to hand
	// the user the right GraphView we rebuild an identical graph here
	// (generators are deterministic in (scale, seed)).
	as := graph.NewAddrSpace()
	scale := o.Scale
	if scale == 0 {
		scale = 1
	}
	seed := o.Seed
	if seed == 0 {
		seed = 42
	}
	threads := o.Threads
	if threads == 0 {
		threads = 8
	}
	k := spec.Build(scale, seed, as, threads)
	view := GraphView{g: k.Graph()}
	return &core.FuncProgram{F: func(t worklist.Task, emit func(addrs ...uint64)) {
		f(Task{Priority: t.Priority, Node: t.Node, EdgeLo: t.EdgeLo, EdgeHi: t.EdgeHi}, view, emit)
	}}
}

// Figures lists the regenerable tables and figures from the paper.
func Figures() []string {
	out := make([]string, 0, len(figureFns))
	for name := range figureFns {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FigureOptions parameterizes figure regeneration.
type FigureOptions struct {
	Threads int    // default 64 (the paper's configuration)
	Scale   int    // default 1
	Seed    uint64 // default 42
	Quick   bool   // trimmed sweeps
	// Jobs bounds the worker pool that runs a figure's independent
	// configurations concurrently (0 = all CPUs, 1 = serial). Output is
	// byte-identical for every value.
	Jobs int
}

// Validate rejects nonsensical figure options with a descriptive error;
// zero values select the documented defaults. Messages follow the same
// "minnow: <Field>: <reason>" form as Config.Validate.
func (f FigureOptions) Validate() error {
	switch {
	case f.Threads < 0:
		return fmt.Errorf("minnow: Threads: figure thread count %d is negative (0 selects the default of 64)", f.Threads)
	case f.Threads > 64:
		return fmt.Errorf("minnow: Threads: figure thread count %d exceeds 64, the coherence directory's sharer-mask width", f.Threads)
	case f.Scale < 0:
		return fmt.Errorf("minnow: Scale: figure scale %d is negative (0 selects the default of 1)", f.Scale)
	case f.Jobs < 0:
		return fmt.Errorf("minnow: Jobs: figure worker count %d is negative (0 means all CPUs)", f.Jobs)
	}
	return nil
}

func (f FigureOptions) toFig() harness.FigOptions {
	o := harness.DefaultFigOptions()
	if f.Threads > 0 {
		o.Threads = f.Threads
	}
	if f.Scale > 0 {
		o.Scale = f.Scale
	}
	if f.Seed != 0 {
		o.Seed = f.Seed
	}
	o.Quick = f.Quick
	o.Jobs = f.Jobs
	return o
}

// figureTables maps figure names to table-producing functions (used for
// CSV export; diagram-style multi-table outputs are text-only).
var figureTables = map[string]func(harness.FigOptions) (*stats.Table, error){
	"table1": func(f harness.FigOptions) (*stats.Table, error) { return harness.Table1(f), nil },
	"table2": harness.Table2,
	"table3": func(f harness.FigOptions) (*stats.Table, error) { return harness.Table3(f), nil },
	"fig2":   harness.Fig2,
	"fig3":   harness.Fig3,
	"fig4":   harness.Fig4,
	"fig5":   harness.Fig5,
	"fig6":   harness.Fig6,
	"fig11":  harness.Fig11,
	"fig15":  harness.Fig15,
	"fig16":  harness.Fig16,
	"fig17":  harness.Fig17,
	"fig18":  harness.Fig18,
	"fig19":  harness.Fig19,
	"fig20":  harness.Fig20,
	"fig21":  harness.Fig21,
	"area":   func(harness.FigOptions) (*stats.Table, error) { return harness.AreaTable(), nil },

	// Time-resolved views built on the interval-sampling registry.
	"occupancy":     harness.FigOccupancy,
	"mpki-interval": harness.FigIntervalMPKI,

	// Open-loop latency: sojourn percentiles vs offered load.
	"sojourn": harness.FigSojourn,

	// Refined Fig. 5 through the top-down profiler.
	"cpistack": harness.FigCPIStack,
}

// RenderFigureCSV regenerates a figure as comma-separated values.
func RenderFigureCSV(name string, opts FigureOptions) (string, error) {
	if err := opts.Validate(); err != nil {
		return "", err
	}
	fn, ok := figureTables[name]
	if !ok {
		return "", fmt.Errorf("minnow: figure %q has no CSV form (have %v)", name, Figures())
	}
	tb, err := fn(opts.toFig())
	if err != nil {
		return "", err
	}
	return tb.CSV(), nil
}

var figureFns = map[string]func(harness.FigOptions) (string, error){
	"table1": func(f harness.FigOptions) (string, error) { return harness.Table1(f).String(), nil },
	"table2": func(f harness.FigOptions) (string, error) { return tbl(harness.Table2(f)) },
	"table3": func(f harness.FigOptions) (string, error) { return harness.Table3(f).String(), nil },
	"fig2":   func(f harness.FigOptions) (string, error) { return tbl(harness.Fig2(f)) },
	"fig3":   func(f harness.FigOptions) (string, error) { return tbl(harness.Fig3(f)) },
	"fig4":   func(f harness.FigOptions) (string, error) { return tbl(harness.Fig4(f)) },
	"fig5":   func(f harness.FigOptions) (string, error) { return tbl(harness.Fig5(f)) },
	"fig6":   func(f harness.FigOptions) (string, error) { return tbl(harness.Fig6(f)) },
	"fig11":  func(f harness.FigOptions) (string, error) { return tbl(harness.Fig11(f)) },
	"fig15":  func(f harness.FigOptions) (string, error) { return tbl(harness.Fig15(f)) },
	"fig16":  func(f harness.FigOptions) (string, error) { return tbl(harness.Fig16(f)) },
	"fig17":  func(f harness.FigOptions) (string, error) { return tbl(harness.Fig17(f)) },
	"fig18":  func(f harness.FigOptions) (string, error) { return tbl(harness.Fig18(f)) },
	"fig19":  func(f harness.FigOptions) (string, error) { return tbl(harness.Fig19(f)) },
	"fig20":  func(f harness.FigOptions) (string, error) { return tbl(harness.Fig20(f)) },
	"fig21":  func(f harness.FigOptions) (string, error) { return tbl(harness.Fig21(f)) },
	"area":   func(harness.FigOptions) (string, error) { return harness.AreaTable().String(), nil },
	"ablations": func(f harness.FigOptions) (string, error) {
		return harness.Ablations(f)
	},
	"occupancy":     func(f harness.FigOptions) (string, error) { return tbl(harness.FigOccupancy(f)) },
	"mpki-interval": func(f harness.FigOptions) (string, error) { return tbl(harness.FigIntervalMPKI(f)) },
	"cpistack":      func(f harness.FigOptions) (string, error) { return tbl(harness.FigCPIStack(f)) },
	"sojourn":       func(f harness.FigOptions) (string, error) { return tbl(harness.FigSojourn(f)) },
}

func tbl(t interface{ String() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// RenderFigure regenerates one of the paper's tables or figures (see
// Figures for the names) as a plain-text table.
func RenderFigure(name string, opts FigureOptions) (string, error) {
	if err := opts.Validate(); err != nil {
		return "", err
	}
	fn, ok := figureFns[name]
	if !ok {
		return "", fmt.Errorf("minnow: unknown figure %q (have %v)", name, Figures())
	}
	return fn(opts.toFig())
}
