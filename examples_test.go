package minnow_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

// TestExamplesBuild compiles every program under examples/ with the
// current tree, so an API change that breaks the documented entry points
// fails `go test ./...` rather than surfacing in a user's first build.
func TestExamplesBuild(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		dir := e.Name()
		t.Run(dir, func(t *testing.T) {
			// -o to the null device: a bare single-package `go build`
			// would drop the binary into the repo root.
			cmd := exec.Command("go", "build", "-o", os.DevNull, "./"+filepath.Join("examples", dir))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go build examples/%s failed: %v\n%s", dir, err, out)
			}
		})
	}
	if found == 0 {
		t.Fatal("no example programs found under examples/")
	}
}

// TestQuickstartEndToEnd runs the quickstart example as a user would and
// checks it completes, compares the three configurations, and prints a
// non-empty canonical summary hash — the public determinism handle.
func TestQuickstartEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("quickstart runs three full simulations")
	}
	out, err := exec.Command("go", "run", "./examples/quickstart").CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/quickstart failed: %v\n%s", err, out)
	}
	for _, want := range []string{"software OBIM", "minnow offload", "minnow + prefetching"} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).Match(out) {
			t.Errorf("quickstart output missing %q:\n%s", want, out)
		}
	}
	m := regexp.MustCompile(`run summary hash: ([0-9a-f]+)`).FindSubmatch(out)
	if m == nil || len(m[1]) == 0 {
		t.Errorf("quickstart printed no summary hash:\n%s", out)
	}
}
