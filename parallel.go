package minnow

import (
	"minnow/internal/harness"
	"minnow/internal/kernels"
)

// RunRequest names one benchmark × configuration for the parallel runner.
type RunRequest struct {
	Benchmark string
	Config    Config
}

// RunResult pairs a request with its outcome, in request order.
type RunResult struct {
	Request RunRequest
	Result  *Result
	Err     error
}

// toJob converts a request to a harness job, wiring the custom prefetch
// hook exactly as Run does.
func (r RunRequest) toJob() (harness.Job, error) {
	if err := r.Config.Validate(); err != nil {
		return harness.Job{}, err
	}
	o, err := r.Config.toOptions()
	if err != nil {
		return harness.Job{}, err
	}
	if r.Config.CustomPrefetch != nil {
		spec, err := kernels.SpecByName(r.Benchmark)
		if err != nil {
			return harness.Job{}, err
		}
		o.CustomPrefetch = adaptPrefetch(spec, o, r.Config.CustomPrefetch)
	}
	return harness.Job{Bench: r.Benchmark, Opts: o}, nil
}

// RunMany executes the requests across a bounded worker pool (jobs <= 0
// uses GOMAXPROCS; jobs = 1 is today's serial behavior) and returns
// results in request order. Every simulation remains single-goroutine
// with private state, so each run's determinism guarantee is unchanged —
// only independent configurations overlap.
func RunMany(reqs []RunRequest, jobs int) []RunResult {
	out := make([]RunResult, len(reqs))
	hjobs := make([]harness.Job, 0, len(reqs))
	slot := make([]int, 0, len(reqs)) // hjobs index -> reqs index
	for i, req := range reqs {
		out[i].Request = req
		j, err := req.toJob()
		if err != nil {
			out[i].Err = err
			continue
		}
		hjobs = append(hjobs, j)
		slot = append(slot, i)
	}
	for k, res := range harness.RunJobs(hjobs, jobs) {
		i := slot[k]
		if res.Err != nil {
			out[i].Err = res.Err
			continue
		}
		out[i].Result = resultFrom(reqs[i].Benchmark, res.Run)
	}
	return out
}

// DeterminismReport is the outcome of running one configuration twice.
type DeterminismReport struct {
	Benchmark  string
	Scheduler  string   // resolved scheduler ("minnow" when Config.Minnow)
	Mismatches []string // rendered field diffs; empty when deterministic
	Hash       string   // stats fingerprint of the first run
}

// OK reports whether the two runs were identical.
func (r DeterminismReport) OK() bool { return len(r.Mismatches) == 0 }

// VerifyDeterminism runs every request twice and compares wall cycles,
// simulation step counts, and a hash of the complete per-core statistics
// between the pairs — the executable form of the simulator's "same
// configuration and seed, same cycle counts" guarantee. The repeats fan
// out over the same worker pool as RunMany.
func VerifyDeterminism(reqs []RunRequest, jobs int) ([]DeterminismReport, error) {
	hjobs := make([]harness.Job, len(reqs))
	for i, req := range reqs {
		j, err := req.toJob()
		if err != nil {
			return nil, err
		}
		hjobs[i] = j
	}
	hreps, err := harness.VerifyDeterminism(hjobs, jobs)
	if err != nil {
		return nil, err
	}
	reports := make([]DeterminismReport, len(hreps))
	for i, hr := range hreps {
		rep := DeterminismReport{
			Benchmark: hr.Job.Bench,
			Scheduler: hr.Job.Opts.Scheduler,
			Hash:      hr.Hash,
		}
		if rep.Scheduler == "" {
			rep.Scheduler = "obim" // the harness default
		}
		for _, m := range hr.Mismatches {
			rep.Mismatches = append(rep.Mismatches, m.String())
		}
		reports[i] = rep
	}
	return reports, nil
}
